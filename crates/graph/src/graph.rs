//! The immutable precedence graph.

use std::collections::HashMap;
use std::fmt;

use crate::{ActionId, GraphError};

/// A precedence graph `G = (A, →)` over a finite action vocabulary
/// (Definition 2.1 of the paper).
///
/// The graph is a DAG; `a → a'` means `a'` may start only after `a` has
/// completed. Construction goes through [`GraphBuilder`], which validates
/// acyclicity.
///
/// [`GraphBuilder`]: crate::GraphBuilder
///
/// # Example
///
/// ```
/// use fgqos_graph::GraphBuilder;
///
/// # fn main() -> Result<(), fgqos_graph::GraphError> {
/// let mut b = GraphBuilder::new();
/// let a = b.action("a");
/// let c = b.action("c");
/// b.edge(a, c)?;
/// let g = b.build()?;
/// assert_eq!(g.successors(a), &[c]);
/// assert_eq!(g.predecessors(c), &[a]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecedenceGraph {
    names: Vec<String>,
    succs: Vec<Vec<ActionId>>,
    preds: Vec<Vec<ActionId>>,
    /// Canonical topological order (Kahn, smallest id first).
    topo: Vec<ActionId>,
    /// `topo_pos[a.index()]` = position of `a` in `topo`.
    topo_pos: Vec<usize>,
    edge_count: usize,
}

impl PrecedenceGraph {
    /// Builds a graph from a name table and an edge list.
    ///
    /// Duplicate edges are collapsed. Used by [`GraphBuilder::build`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] when the relation is cyclic and
    /// [`GraphError::UnknownAction`] / [`GraphError::SelfLoop`] on malformed
    /// edges.
    ///
    /// [`GraphBuilder::build`]: crate::GraphBuilder::build
    pub(crate) fn from_parts(
        names: Vec<String>,
        edges: &[(ActionId, ActionId)],
    ) -> Result<Self, GraphError> {
        let n = names.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut edge_count = 0usize;
        for &(from, to) in edges {
            if from.index() >= n {
                return Err(GraphError::UnknownAction(from));
            }
            if to.index() >= n {
                return Err(GraphError::UnknownAction(to));
            }
            if from == to {
                return Err(GraphError::SelfLoop(from));
            }
            if succs[from.index()].contains(&to) {
                continue; // collapse duplicates
            }
            succs[from.index()].push(to);
            preds[to.index()].push(from);
            edge_count += 1;
        }
        for list in succs.iter_mut().chain(preds.iter_mut()) {
            list.sort_unstable();
        }

        // Kahn's algorithm with a smallest-id frontier gives a canonical,
        // deterministic topological order and detects cycles.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut frontier: std::collections::BinaryHeap<std::cmp::Reverse<ActionId>> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| std::cmp::Reverse(ActionId::from_index(i)))
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(a)) = frontier.pop() {
            topo.push(a);
            for &s in &succs[a.index()] {
                indeg[s.index()] -= 1;
                if indeg[s.index()] == 0 {
                    frontier.push(std::cmp::Reverse(s));
                }
            }
        }
        if topo.len() != n {
            let witness = cycle_witness(&succs, &indeg);
            return Err(GraphError::Cycle(witness));
        }
        let mut topo_pos = vec![0usize; n];
        for (pos, a) in topo.iter().enumerate() {
            topo_pos[a.index()] = pos;
        }
        Ok(PrecedenceGraph {
            names,
            succs,
            preds,
            topo,
            topo_pos,
            edge_count,
        })
    }

    /// Number of actions `|A|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the graph has no actions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of (direct) precedence constraints.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Name of action `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` does not belong to this graph.
    #[must_use]
    pub fn name(&self, a: ActionId) -> &str {
        &self.names[a.index()]
    }

    /// Looks an action up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<ActionId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(ActionId::from_index)
    }

    /// Iterates over all action ids in insertion order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = ActionId> + '_ {
        (0..self.names.len()).map(ActionId::from_index)
    }

    /// Direct successors of `a` (sorted by id).
    ///
    /// # Panics
    ///
    /// Panics if `a` does not belong to this graph.
    #[must_use]
    pub fn successors(&self, a: ActionId) -> &[ActionId] {
        &self.succs[a.index()]
    }

    /// Direct predecessors of `a` (sorted by id).
    ///
    /// # Panics
    ///
    /// Panics if `a` does not belong to this graph.
    #[must_use]
    pub fn predecessors(&self, a: ActionId) -> &[ActionId] {
        &self.preds[a.index()]
    }

    /// Iterates over all direct edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (ActionId, ActionId)> + '_ {
        self.ids()
            .flat_map(move |a| self.succs[a.index()].iter().map(move |&b| (a, b)))
    }

    /// Actions with no predecessor.
    #[must_use]
    pub fn sources(&self) -> Vec<ActionId> {
        self.ids()
            .filter(|a| self.preds[a.index()].is_empty())
            .collect()
    }

    /// Actions with no successor.
    #[must_use]
    pub fn sinks(&self) -> Vec<ActionId> {
        self.ids()
            .filter(|a| self.succs[a.index()].is_empty())
            .collect()
    }

    /// Whether `a` (strictly, transitively) precedes `b`.
    ///
    /// Runs a forward BFS from `a`; use [`PrecedenceGraph::reachability`]
    /// when many queries are needed.
    ///
    /// # Panics
    ///
    /// Panics if either action does not belong to this graph.
    #[must_use]
    pub fn precedes(&self, a: ActionId, b: ActionId) -> bool {
        assert!(b.index() < self.len(), "action {b} outside graph");
        if a == b {
            return false;
        }
        // Prune with topological positions: a precedes b only if it comes
        // earlier in every (hence the canonical) topological order.
        if self.topo_pos[a.index()] >= self.topo_pos[b.index()] {
            return false;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![a];
        seen[a.index()] = true;
        while let Some(x) = stack.pop() {
            for &s in &self.succs[x.index()] {
                if s == b {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// The canonical topological order (Kahn, smallest id first).
    #[must_use]
    pub fn topological_order(&self) -> &[ActionId] {
        &self.topo
    }

    /// Position of `a` in the canonical topological order.
    ///
    /// # Panics
    ///
    /// Panics if `a` does not belong to this graph.
    #[must_use]
    pub fn topological_position(&self, a: ActionId) -> usize {
        self.topo_pos[a.index()]
    }

    /// Precomputes the full transitive closure for repeated
    /// [`Reachability::precedes`] queries.
    #[must_use]
    pub fn reachability(&self) -> Reachability {
        let n = self.len();
        let words = n.div_ceil(64);
        let mut reach = vec![0u64; n * words];
        // Process in reverse topological order so successors are final.
        for &a in self.topo.iter().rev() {
            let ai = a.index();
            // Work on a scratch row to appease the borrow checker.
            let mut row = vec![0u64; words];
            for &s in &self.succs[ai] {
                let si = s.index();
                row[si / 64] |= 1 << (si % 64);
                let src = &reach[si * words..(si + 1) * words];
                for (w, &bits) in row.iter_mut().zip(src) {
                    *w |= bits;
                }
            }
            reach[ai * words..(ai + 1) * words].copy_from_slice(&row);
        }
        Reachability { words, reach }
    }

    /// Iterator over the graph's *wavefronts*: wavefront 0 is the set of
    /// sources, wavefront `w + 1` is the set of actions whose in-degree
    /// drops to zero once wavefronts `0..=w` are removed.
    ///
    /// Each wavefront is an antichain (no precedence between its members,
    /// so they may execute concurrently), every action's direct
    /// predecessors lie in strictly earlier wavefronts, and the
    /// concatenation of all wavefronts is a topological partition of the
    /// graph. Members are yielded sorted by id, so the layering is
    /// deterministic.
    ///
    /// # Example
    ///
    /// ```
    /// use fgqos_graph::GraphBuilder;
    ///
    /// # fn main() -> Result<(), fgqos_graph::GraphError> {
    /// let mut b = GraphBuilder::new();
    /// let s = b.action("s");
    /// let l = b.action("l");
    /// let r = b.action("r");
    /// b.edge(s, l)?;
    /// b.edge(s, r)?;
    /// let g = b.build()?;
    /// let waves: Vec<_> = g.wavefronts().collect();
    /// assert_eq!(waves, vec![vec![s], vec![l, r]]);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn wavefronts(&self) -> Wavefronts<'_> {
        let indeg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let frontier: Vec<ActionId> = self.ids().filter(|a| indeg[a.index()] == 0).collect();
        Wavefronts {
            graph: self,
            indeg,
            frontier,
        }
    }

    /// Validates that `seq` is an execution sequence of this graph:
    /// distinct actions, order compatible with `→`, and every prefix
    /// downward closed (each action's direct predecessors occur earlier).
    ///
    /// # Errors
    ///
    /// [`GraphError::UnknownAction`], [`GraphError::DuplicateInSequence`] or
    /// [`GraphError::PrecedenceViolation`].
    pub fn validate_sequence(&self, seq: &[ActionId]) -> Result<(), GraphError> {
        let mut pos: HashMap<ActionId, usize> = HashMap::with_capacity(seq.len());
        for (i, &a) in seq.iter().enumerate() {
            if a.index() >= self.len() {
                return Err(GraphError::UnknownAction(a));
            }
            if pos.insert(a, i).is_some() {
                return Err(GraphError::DuplicateInSequence(a));
            }
        }
        for (&a, &i) in &pos {
            for &p in self.predecessors(a) {
                match pos.get(&p) {
                    Some(&j) if j < i => {}
                    _ => return Err(GraphError::PrecedenceViolation(p, a)),
                }
            }
        }
        Ok(())
    }

    /// Validates that `seq` is a *schedule*: an execution sequence in which
    /// every action occurs (Definition 2.2).
    ///
    /// # Errors
    ///
    /// The conditions of [`PrecedenceGraph::validate_sequence`], plus
    /// [`GraphError::IncompleteSchedule`].
    pub fn validate_schedule(&self, seq: &[ActionId]) -> Result<(), GraphError> {
        self.validate_sequence(seq)?;
        if seq.len() != self.len() {
            return Err(GraphError::IncompleteSchedule {
                expected: self.len(),
                actual: seq.len(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for PrecedenceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precedence graph with {} actions, {} edges",
            self.len(),
            self.edge_count()
        )
    }
}

/// Iterator over the in-degree-zero frontiers of a [`PrecedenceGraph`];
/// see [`PrecedenceGraph::wavefronts`].
#[derive(Debug, Clone)]
pub struct Wavefronts<'g> {
    graph: &'g PrecedenceGraph,
    indeg: Vec<usize>,
    frontier: Vec<ActionId>,
}

impl Iterator for Wavefronts<'_> {
    type Item = Vec<ActionId>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.frontier.is_empty() {
            return None;
        }
        let wave = std::mem::take(&mut self.frontier);
        for &a in &wave {
            for &s in self.graph.successors(a) {
                self.indeg[s.index()] -= 1;
                if self.indeg[s.index()] == 0 {
                    self.frontier.push(s);
                }
            }
        }
        self.frontier.sort_unstable();
        Some(wave)
    }
}

/// Precomputed transitive closure of a [`PrecedenceGraph`].
///
/// Produced by [`PrecedenceGraph::reachability`]; answers `precedes` in
/// O(1).
#[derive(Debug, Clone)]
pub struct Reachability {
    words: usize,
    reach: Vec<u64>,
}

impl Reachability {
    /// Whether `a` strictly precedes `b` in the closed relation.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the originating graph.
    #[must_use]
    pub fn precedes(&self, a: ActionId, b: ActionId) -> bool {
        let bi = b.index();
        self.reach[a.index() * self.words + bi / 64] >> (bi % 64) & 1 == 1
    }
}

/// Extracts one cycle from the subgraph of nodes with nonzero in-degree
/// after Kahn's algorithm stalls.
fn cycle_witness(succs: &[Vec<ActionId>], indeg: &[usize]) -> Vec<ActionId> {
    let n = succs.len();
    let in_cycle_region: Vec<bool> = indeg.iter().map(|&d| d > 0).collect();
    let start = (0..n).find(|&i| in_cycle_region[i]);
    let Some(start) = start else {
        return Vec::new();
    };
    // Walk forward inside the region until a node repeats.
    let mut seen_at: HashMap<usize, usize> = HashMap::new();
    let mut path: Vec<ActionId> = Vec::new();
    let mut cur = start;
    loop {
        if let Some(&first) = seen_at.get(&cur) {
            return path[first..].to_vec();
        }
        seen_at.insert(cur, path.len());
        path.push(ActionId::from_index(cur));
        cur = succs[cur]
            .iter()
            .map(|a| a.index())
            .find(|&s| in_cycle_region[s])
            .expect("node in cycle region must have successor in region");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> (PrecedenceGraph, [ActionId; 4]) {
        let mut b = GraphBuilder::new();
        let s = b.action("s");
        let l = b.action("l");
        let r = b.action("r");
        let t = b.action("t");
        b.edge(s, l).unwrap();
        b.edge(s, r).unwrap();
        b.edge(l, t).unwrap();
        b.edge(r, t).unwrap();
        (b.build().unwrap(), [s, l, r, t])
    }

    #[test]
    fn diamond_structure() {
        let (g, [s, l, r, t]) = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.sources(), vec![s]);
        assert_eq!(g.sinks(), vec![t]);
        assert_eq!(g.successors(s), &[l, r]);
        assert_eq!(g.predecessors(t), &[l, r]);
    }

    #[test]
    fn precedes_is_transitive_and_irreflexive() {
        let (g, [s, l, r, t]) = diamond();
        assert!(g.precedes(s, t));
        assert!(g.precedes(s, l));
        assert!(!g.precedes(l, r));
        assert!(!g.precedes(t, s));
        assert!(!g.precedes(s, s));
    }

    #[test]
    fn reachability_matches_precedes() {
        let (g, ids) = diamond();
        let rc = g.reachability();
        for &a in &ids {
            for &b in &ids {
                assert_eq!(rc.precedes(a, b), g.precedes(a, b), "{a} -> {b}");
            }
        }
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        b.edge(x, y).unwrap();
        b.edge(x, y).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn canonical_topo_order_is_deterministic_and_valid() {
        let (g, [s, l, r, t]) = diamond();
        assert_eq!(g.topological_order(), &[s, l, r, t]);
        g.validate_schedule(g.topological_order()).unwrap();
        for a in g.ids() {
            for &b in g.successors(a) {
                assert!(g.topological_position(a) < g.topological_position(b));
            }
        }
    }

    #[test]
    fn validate_sequence_catches_violation() {
        let (g, [s, l, _r, t]) = diamond();
        assert_eq!(
            g.validate_sequence(&[l, s]),
            Err(GraphError::PrecedenceViolation(s, l))
        );
        assert_eq!(
            g.validate_sequence(&[s, s]),
            Err(GraphError::DuplicateInSequence(s))
        );
        // t without l,r is not downward closed.
        assert!(g.validate_sequence(&[s, t]).is_err());
        // valid prefix
        g.validate_sequence(&[s, l]).unwrap();
    }

    #[test]
    fn validate_schedule_requires_all_actions() {
        let (g, [s, l, r, t]) = diamond();
        assert_eq!(
            g.validate_schedule(&[s, l]),
            Err(GraphError::IncompleteSchedule {
                expected: 4,
                actual: 2
            })
        );
        g.validate_schedule(&[s, r, l, t]).unwrap();
    }

    #[test]
    fn cycle_witness_is_a_cycle() {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..5).map(|i| b.action(format!("c{i}"))).collect();
        b.edge(ids[0], ids[1]).unwrap();
        b.edge(ids[1], ids[2]).unwrap();
        b.edge(ids[2], ids[3]).unwrap();
        b.edge(ids[3], ids[1]).unwrap(); // cycle 1->2->3->1
        b.edge(ids[3], ids[4]).unwrap();
        match b.build().unwrap_err() {
            GraphError::Cycle(w) => {
                assert_eq!(w.len(), 3);
                assert!(w.contains(&ids[1]) && w.contains(&ids[2]) && w.contains(&ids[3]));
            }
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn empty_graph_queries() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(g.is_empty());
        assert!(g.sources().is_empty());
        assert!(g.sinks().is_empty());
        g.validate_schedule(&[]).unwrap();
    }

    #[test]
    fn wavefronts_partition_the_diamond() {
        let (g, [s, l, r, t]) = diamond();
        let waves: Vec<_> = g.wavefronts().collect();
        assert_eq!(waves, vec![vec![s], vec![l, r], vec![t]]);
        // No precedence inside a wavefront.
        for w in &waves {
            for &a in w {
                for &b in w {
                    assert!(!g.precedes(a, b));
                }
            }
        }
    }

    #[test]
    fn wavefronts_of_empty_graph_are_empty() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.wavefronts().count(), 0);
    }

    #[test]
    fn find_by_name() {
        let (g, [s, ..]) = diamond();
        assert_eq!(g.find("s"), Some(s));
        assert_eq!(g.find("nope"), None);
    }

    #[test]
    fn display_mentions_sizes() {
        let (g, _) = diamond();
        assert_eq!(g.to_string(), "precedence graph with 4 actions, 4 edges");
    }
}
