//! Precedence graphs and execution sequences for fine-grain QoS control.
//!
//! This crate implements the data-flow model of Section 2.1 of Combaz,
//! Fernandez, Lepley and Sifakis, *"Fine Grain QoS Control for Multimedia
//! Application Software"* (DATE 2005):
//!
//! * an application is a finite set of *actions* `A` (C functions in the
//!   paper, opaque work units here) composed by a *precedence graph*
//!   `G = (A, →)`;
//! * an *execution sequence* is a linear extension of a subset of `A` that is
//!   downward closed under `→`;
//! * a *schedule* is an execution sequence in which every action of `A`
//!   occurs exactly once;
//! * cyclic applications (the MPEG-4 encoder treats `N` macroblocks per
//!   frame) are modeled by *iterating* a body graph `N` times
//!   ([`iterate::IteratedGraph`]).
//!
//! # Example
//!
//! ```
//! use fgqos_graph::{GraphBuilder, PrecedenceGraph};
//!
//! # fn main() -> Result<(), fgqos_graph::GraphError> {
//! let mut b = GraphBuilder::new();
//! let grab = b.action("Grab_Macro_Block");
//! let me = b.action("Motion_Estimate");
//! let dct = b.action("Discrete_Cosine_Transform");
//! b.edge(grab, me)?;
//! b.edge(me, dct)?;
//! let g: PrecedenceGraph = b.build()?;
//! assert_eq!(g.len(), 3);
//! assert!(g.precedes(grab, dct)); // transitive
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod builder;
mod error;
mod graph;
mod sequence;

pub mod dot;
pub mod iterate;
pub mod topo;

pub use action::ActionId;
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{PrecedenceGraph, Reachability, Wavefronts};
pub use sequence::ExecutionSequence;
