//! Incremental construction of precedence graphs.

use std::collections::HashSet;

use crate::{ActionId, GraphError, PrecedenceGraph};

/// Builder for [`PrecedenceGraph`].
///
/// Actions are registered with [`GraphBuilder::action`] (names must be
/// unique) and direct precedence constraints with [`GraphBuilder::edge`].
/// [`GraphBuilder::build`] validates acyclicity and produces an immutable
/// graph.
///
/// # Example
///
/// ```
/// use fgqos_graph::GraphBuilder;
///
/// # fn main() -> Result<(), fgqos_graph::GraphError> {
/// let mut b = GraphBuilder::new();
/// let x = b.action("x");
/// let y = b.action("y");
/// b.edge(x, y)?;
/// let g = b.build()?;
/// assert_eq!(g.name(x), "x");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    names: Vec<String>,
    edges: Vec<(ActionId, ActionId)>,
    seen_names: HashSet<String>,
    duplicate: Option<String>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `actions` actions.
    #[must_use]
    pub fn with_capacity(actions: usize) -> Self {
        GraphBuilder {
            names: Vec::with_capacity(actions),
            edges: Vec::new(),
            seen_names: HashSet::with_capacity(actions),
            duplicate: None,
        }
    }

    /// Registers an action and returns its id.
    ///
    /// Duplicate names are tolerated here but reported by
    /// [`GraphBuilder::build`], so that construction code can stay linear.
    pub fn action(&mut self, name: impl Into<String>) -> ActionId {
        let name = name.into();
        if !self.seen_names.insert(name.clone()) && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        let id = ActionId::from_index(self.names.len());
        self.names.push(name);
        id
    }

    /// Adds the direct precedence constraint `from → to`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownAction`] if either endpoint has not been
    /// registered, and [`GraphError::SelfLoop`] if `from == to`. Cycles are
    /// only detected by [`GraphBuilder::build`].
    pub fn edge(&mut self, from: ActionId, to: ActionId) -> Result<&mut Self, GraphError> {
        let n = self.names.len();
        for a in [from, to] {
            if a.index() >= n {
                return Err(GraphError::UnknownAction(a));
            }
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        self.edges.push((from, to));
        Ok(self)
    }

    /// Adds a chain of constraints `a1 → a2 → ... → ak`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::edge`].
    pub fn chain(&mut self, actions: &[ActionId]) -> Result<&mut Self, GraphError> {
        for w in actions.windows(2) {
            self.edge(w[0], w[1])?;
        }
        Ok(self)
    }

    /// Number of actions registered so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no action has been registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Validates and produces the immutable graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DuplicateName`] if two actions share a name and
    /// [`GraphError::Cycle`] if the precedence relation is cyclic.
    pub fn build(self) -> Result<PrecedenceGraph, GraphError> {
        if let Some(name) = self.duplicate {
            return Err(GraphError::DuplicateName(name));
        }
        PrecedenceGraph::from_parts(self.names, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = GraphBuilder::new();
        let a = b.action("a");
        let ghost = ActionId::from_index(7);
        assert_eq!(
            b.edge(a, ghost).unwrap_err(),
            GraphError::UnknownAction(ghost)
        );
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new();
        let a = b.action("a");
        assert_eq!(b.edge(a, a).unwrap_err(), GraphError::SelfLoop(a));
    }

    #[test]
    fn reports_duplicate_names_at_build() {
        let mut b = GraphBuilder::new();
        b.action("same");
        b.action("same");
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DuplicateName("same".to_owned())
        );
    }

    #[test]
    fn detects_cycles_at_build() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        let z = b.action("z");
        b.edge(x, y).unwrap();
        b.edge(y, z).unwrap();
        b.edge(z, x).unwrap();
        match b.build().unwrap_err() {
            GraphError::Cycle(w) => assert!(!w.is_empty()),
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn chain_builds_path() {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..4).map(|i| b.action(format!("n{i}"))).collect();
        b.chain(&ids).unwrap();
        let g = b.build().unwrap();
        assert!(g.precedes(ids[0], ids[3]));
        assert!(!g.precedes(ids[3], ids[0]));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(8);
        assert!(b.is_empty());
        b.action("a");
        assert_eq!(b.len(), 1);
    }
}
