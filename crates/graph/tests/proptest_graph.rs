//! Property tests over randomly generated DAGs.

use fgqos_graph::iterate::{IteratedGraph, IterationMode};
use fgqos_graph::topo::{linear_extensions, list_order_by_key};
use fgqos_graph::{ActionId, GraphBuilder, PrecedenceGraph};
use proptest::prelude::*;

/// Random DAG: `n` nodes, edges only from smaller to larger index, so the
/// result is acyclic by construction.
fn arb_dag(max_nodes: usize) -> impl Strategy<Value = PrecedenceGraph> {
    (2..=max_nodes)
        .prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                .collect();
            (
                Just(n),
                proptest::collection::vec(any::<bool>(), pairs.len()).prop_map(move |mask| {
                    pairs
                        .iter()
                        .zip(mask)
                        .filter_map(|(&p, keep)| keep.then_some(p))
                        .collect::<Vec<_>>()
                }),
            )
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new();
            let ids: Vec<ActionId> = (0..n).map(|i| b.action(format!("n{i}"))).collect();
            for (i, j) in edges {
                b.edge(ids[i], ids[j]).unwrap();
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_topo_order_is_a_schedule(g in arb_dag(10)) {
        g.validate_schedule(g.topological_order()).unwrap();
    }

    #[test]
    fn reachability_agrees_with_bfs(g in arb_dag(9)) {
        let rc = g.reachability();
        for a in g.ids() {
            for b in g.ids() {
                prop_assert_eq!(rc.precedes(a, b), g.precedes(a, b));
            }
        }
    }

    #[test]
    fn precedes_is_a_strict_partial_order(g in arb_dag(9)) {
        let rc = g.reachability();
        for a in g.ids() {
            prop_assert!(!rc.precedes(a, a), "irreflexive");
            for b in g.ids() {
                if rc.precedes(a, b) {
                    prop_assert!(!rc.precedes(b, a), "antisymmetric");
                }
                for c in g.ids() {
                    if rc.precedes(a, b) && rc.precedes(b, c) {
                        prop_assert!(rc.precedes(a, c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn every_enumerated_extension_is_a_schedule(g in arb_dag(7)) {
        for ext in linear_extensions(&g, 50) {
            g.validate_schedule(&ext).unwrap();
        }
    }

    #[test]
    fn list_order_is_always_a_schedule(g in arb_dag(10), seed in any::<u64>()) {
        // Arbitrary priorities from a seed: the list order must still be a
        // valid schedule regardless of the key function.
        let order = list_order_by_key(&g, |a| {
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(a.index() as u64 * 0xDEAD_BEEF)
        });
        g.validate_schedule(&order).unwrap();
    }

    #[test]
    fn iterated_graphs_are_valid_and_addressable(
        g in arb_dag(6),
        n in 1usize..4,
        pipelined in any::<bool>(),
    ) {
        let mode = if pipelined { IterationMode::Pipelined } else { IterationMode::Sequential };
        let it = IteratedGraph::new(&g, n, mode).unwrap();
        prop_assert_eq!(it.graph().len(), g.len() * n);
        for k in 0..n {
            for a in g.ids() {
                prop_assert_eq!(it.body_of(it.instance(a, k)), (a, k));
            }
        }
        // body edges present in every copy
        for (from, to) in g.edges() {
            for k in 0..n {
                prop_assert!(it.graph().precedes(it.instance(from, k), it.instance(to, k)));
            }
        }
    }

    #[test]
    fn sequential_replay_matches_fresh_schedule_validity(g in arb_dag(6), n in 1usize..4) {
        let it = IteratedGraph::new(&g, n, IterationMode::Sequential).unwrap();
        let body_sched = g.topological_order().to_vec();
        let replayed = it.replay_body_schedule(&body_sched).unwrap();
        it.graph().validate_schedule(&replayed).unwrap();
    }

    /// The wavefronts of an iterated graph are a *topological partition*
    /// of the unrolled graph, for random bodies, iteration counts and
    /// both unrolling modes:
    /// 1. every instance appears in exactly one wavefront (partition);
    /// 2. no precedence holds inside a wavefront (each is an antichain,
    ///    so its members may execute concurrently);
    /// 3. every direct predecessor lies in a strictly earlier wavefront
    ///    (concatenating the wavefronts yields a valid schedule).
    #[test]
    fn wavefronts_are_a_topological_partition_of_the_unrolled_graph(
        g in arb_dag(6),
        n in 1usize..5,
        pipelined in any::<bool>(),
    ) {
        let mode = if pipelined { IterationMode::Pipelined } else { IterationMode::Sequential };
        let it = IteratedGraph::new(&g, n, mode).unwrap();
        let unrolled = it.graph();
        let waves: Vec<Vec<ActionId>> = it.wavefronts().collect();

        // (1) Partition: disjoint and complete.
        let mut wave_of = vec![usize::MAX; unrolled.len()];
        for (w, wave) in waves.iter().enumerate() {
            for &a in wave {
                prop_assert_eq!(wave_of[a.index()], usize::MAX, "instance in two wavefronts");
                wave_of[a.index()] = w;
            }
        }
        prop_assert!(wave_of.iter().all(|&w| w != usize::MAX), "instance missing");

        // (2) Antichain: no precedence inside a wavefront.
        let reach = unrolled.reachability();
        for wave in &waves {
            for &a in wave {
                for &b in wave {
                    prop_assert!(!reach.precedes(a, b), "precedence inside wavefront");
                }
            }
        }

        // (3) Direct predecessors lie strictly earlier, so the
        // concatenation is a schedule.
        for a in unrolled.ids() {
            for &p in unrolled.predecessors(a) {
                prop_assert!(wave_of[p.index()] < wave_of[a.index()]);
            }
        }
        let flat: Vec<ActionId> = waves.into_iter().flatten().collect();
        unrolled.validate_schedule(&flat).unwrap();

        // Mode-specific row structure: pipelined wavefronts never hold
        // two instances of the same body action; sequential wavefronts
        // never span two iterations.
        for wave in it.wavefronts() {
            let rows = it.rows_of(&wave);
            match mode {
                IterationMode::Pipelined => {
                    let mut actions: Vec<_> = rows.iter().map(|&(a, _)| a).collect();
                    actions.sort_unstable();
                    actions.dedup();
                    prop_assert_eq!(actions.len(), rows.len());
                }
                IterationMode::Sequential => {
                    let k0 = rows[0].1;
                    prop_assert!(rows.iter().all(|&(_, k)| k == k0));
                }
            }
        }
    }
}
