//! Encoder/decoder consistency: an independent decoder, given only the
//! bitstream, the previous reference and the frame QP, must reproduce
//! the encoder's reconstruction **bit-exactly** — the property that keeps
//! a hybrid codec from drifting.

use fgqos_core::policy::{ConstantQuality, MaxQuality, QualityPolicy};
use fgqos_encoder::app::EncoderApp;
use fgqos_encoder::decoder::decode_frame;
use fgqos_encoder::psnr::psnr;
use fgqos_sim::app::VideoApp;
use fgqos_sim::exec::WorkDriven;
use fgqos_sim::runner::{Mode, RunConfig, Runner};
use fgqos_sim::scenario::LoadScenario;
use fgqos_time::Quality;

fn run_stream(
    frames: usize,
    policy: &mut dyn QualityPolicy,
    mode: Mode,
    seed: u64,
) -> Runner<EncoderApp> {
    let scenario = LoadScenario::paper_benchmark(seed).truncated(frames);
    let app = EncoderApp::new(scenario, 64, 48, seed).expect("app");
    let n = app.iterations();
    let config = RunConfig::paper_defaults().scaled_to_macroblocks(n);
    let mut runner = Runner::new(app, config).expect("runner");
    let mut exec = WorkDriven::new(0, 1.0, seed);
    runner.run(mode, policy, &mut exec, None).expect("run");
    runner
}

#[test]
fn decoder_reproduces_encoder_reconstruction_exactly() {
    // Run a few frames under the controller, then decode the last frame
    // from its bitstream alone.
    let runner = run_stream(6, &mut MaxQuality::new(), Mode::Controlled, 21);
    let app = runner.app();
    let streams = app.last_frame_streams();
    assert_eq!(streams.len(), 12, "one substream per macroblock");
    let decoded = decode_frame(
        streams,
        app.last_frame_reference(),
        64,
        48,
        app.last_frame_qp(),
    )
    .expect("decodes");
    assert_eq!(
        decoded.data(),
        app.displayed().data(),
        "decoder output differs from encoder reconstruction"
    );
}

#[test]
fn decoder_agrees_across_quality_levels() {
    for q in [0u8, 3, 7] {
        let runner = run_stream(
            4,
            &mut ConstantQuality::new(Quality::new(q)),
            Mode::Constant,
            33,
        );
        let app = runner.app();
        let decoded = decode_frame(
            app.last_frame_streams(),
            app.last_frame_reference(),
            64,
            48,
            app.last_frame_qp(),
        )
        .expect("decodes");
        assert_eq!(
            decoded.data(),
            app.displayed().data(),
            "drift at constant q{q}"
        );
    }
}

#[test]
fn decoded_frame_quality_tracks_reported_psnr() {
    // The PSNR the app reports must equal PSNR(source, decoded) — the
    // decoder sees exactly what the display would.
    let frames = 5;
    let scenario = LoadScenario::paper_benchmark(8).truncated(frames);
    let source_cam = fgqos_encoder::synth::SyntheticCamera::new(&scenario, 64, 48, 8);
    let runner = run_stream(frames, &mut MaxQuality::new(), Mode::Controlled, 8);
    let app = runner.app();
    let decoded = decode_frame(
        app.last_frame_streams(),
        app.last_frame_reference(),
        64,
        48,
        app.last_frame_qp(),
    )
    .expect("decodes");
    let source = source_cam.frame(frames - 1);
    let db = psnr(&source, &decoded);
    assert!(db > 20.0, "decoded quality implausible: {db} dB");
    assert_eq!(
        db,
        psnr(&source, app.displayed()),
        "decoded and reconstructed frames must score identically"
    );
}

#[test]
fn bitstream_size_shrinks_with_better_motion_search() {
    // More search ⇒ better prediction ⇒ smaller residual streams.
    let lo = run_stream(
        4,
        &mut ConstantQuality::new(Quality::new(0)),
        Mode::Constant,
        55,
    );
    let hi = run_stream(
        4,
        &mut ConstantQuality::new(Quality::new(7)),
        Mode::Constant,
        55,
    );
    let bytes = |r: &Runner<EncoderApp>| -> usize {
        r.app().last_frame_streams().iter().map(Vec::len).sum()
    };
    assert!(
        bytes(&hi) <= bytes(&lo),
        "q7 stream ({}) larger than q0 stream ({})",
        bytes(&hi),
        bytes(&lo)
    );
}
