//! A from-scratch macroblock video encoder with the paper's Fig. 2 action
//! pipeline.
//!
//! The original evaluation instruments a proprietary STMicroelectronics
//! MPEG-4 encoder (~7000 lines of C). This crate is the substitution
//! documented in DESIGN.md: a real — if compact — hybrid video encoder
//! whose per-macroblock data flow is exactly the paper's Fig. 2:
//!
//! ```text
//! Grab_Macro_Block ─→ Motion_Estimate ─→ Discrete_Cosine_Transform ─→ Quantize
//!        └────────→ Intra_Predict ───────────↑                          ├─→ Compress
//!                                                Inverse_Quantize ←─────┘
//!                                                Inverse_DCT → Reconstruct
//! ```
//!
//! * [`frame`] — luma frames and 16×16 macroblock access;
//! * [`synth`] — the synthetic camera: deterministic scenes driven by the
//!   simulator's [`fgqos_sim::scenario::LoadScenario`] (moving objects,
//!   texture, noise, scene cuts);
//! * [`dct`] — 8×8 forward/inverse DCT;
//! * [`quant`] — uniform quantization and [`quant::RateController`]
//!   steering the quantization parameter toward a target bitrate;
//! * [`motion`] — full-search motion estimation whose **search radius is
//!   the quality level** (the knob the QoS controller turns), with early
//!   termination and work accounting;
//! * [`intra`] — DC intra prediction and the intra/inter decision;
//! * [`entropy`] — zigzag + run-length + Exp-Golomb bitstream (with a
//!   decoder used for roundtrip tests);
//! * [`timing`] — calibration of per-action work counts onto the Fig. 5
//!   cycle tables (work-driven execution times);
//! * [`psnr`] — quality measurement;
//! * [`app`] — [`app::EncoderApp`], the [`fgqos_sim::app::VideoApp`]
//!   implementation gluing it all to the controller and pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod dct;

/// Re-export of the encoded-output payload type the
/// [`app::EncoderApp`] produces through
/// [`fgqos_sim::runtime::ParallelApp::encoded_output`] (defined in
/// `fgqos-sim` because the producer hook lives on `ParallelApp`).
pub use fgqos_sim::output::EncodedFrame;
pub mod decoder;
pub mod entropy;
pub mod frame;
pub mod intra;
pub mod motion;
pub mod psnr;
pub mod quant;
pub mod synth;
pub mod timing;
