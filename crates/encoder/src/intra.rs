//! DC intra prediction and the intra/inter mode decision.

use crate::frame::{sad, Frame, MB_SIZE};

/// Macroblock coding mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbMode {
    /// Predicted from spatial neighbours (always used on I-frames).
    Intra,
    /// Predicted by motion compensation from the reference frame.
    Inter,
}

/// DC intra prediction: predicts the whole macroblock as the mean of the
/// already-reconstructed pixels directly above and to the left (128 when
/// no neighbours exist, e.g. the top-left macroblock).
#[must_use]
pub fn dc_predict(recon: &Frame, ox: usize, oy: usize) -> [u8; MB_SIZE * MB_SIZE] {
    let mut sum = 0u32;
    let mut count = 0u32;
    if oy > 0 {
        for dx in 0..MB_SIZE {
            sum += u32::from(recon.get(ox + dx, oy - 1));
            count += 1;
        }
    }
    if ox > 0 {
        for dy in 0..MB_SIZE {
            sum += u32::from(recon.get(ox - 1, oy + dy));
            count += 1;
        }
    }
    let dc = sum
        .checked_div(count)
        .map_or(128, |v| u8::try_from(v).unwrap_or(255));
    [dc; MB_SIZE * MB_SIZE]
}

/// DC intra prediction from neighbour macroblock *reconstruction blocks*
/// instead of a whole frame: the mean of the bottom row of the block
/// above and the right column of the block to the left (128 when neither
/// exists).
///
/// Produces exactly the pixels [`dc_predict`] reads out of the
/// reconstructed frame — this is the form the parallel wavefront executor
/// uses, where neighbour reconstructions live in per-macroblock working
/// state rather than a shared frame.
#[must_use]
pub fn dc_predict_blocks(
    above: Option<&[u8; MB_SIZE * MB_SIZE]>,
    left: Option<&[u8; MB_SIZE * MB_SIZE]>,
) -> [u8; MB_SIZE * MB_SIZE] {
    let mut sum = 0u32;
    let mut count = 0u32;
    if let Some(a) = above {
        for dx in 0..MB_SIZE {
            sum += u32::from(a[(MB_SIZE - 1) * MB_SIZE + dx]);
            count += 1;
        }
    }
    if let Some(l) = left {
        for dy in 0..MB_SIZE {
            sum += u32::from(l[dy * MB_SIZE + MB_SIZE - 1]);
            count += 1;
        }
    }
    let dc = sum
        .checked_div(count)
        .map_or(128, |v| u8::try_from(v).unwrap_or(255));
    [dc; MB_SIZE * MB_SIZE]
}

/// Chooses between the intra (DC) and inter (motion-compensated)
/// prediction by SAD, with a small bias toward inter (its motion vector
/// costs bits but tracks content better). Returns the mode and its SAD.
#[must_use]
pub fn decide_mode(
    target: &[u8; MB_SIZE * MB_SIZE],
    intra_pred: &[u8; MB_SIZE * MB_SIZE],
    inter_sad: u32,
) -> (MbMode, u32) {
    let intra_sad = sad(target, intra_pred);
    // 128 = empirical lambda for the MV signalling cost.
    if inter_sad + 128 <= intra_sad {
        (MbMode::Inter, inter_sad)
    } else {
        (MbMode::Intra, intra_sad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_left_macroblock_predicts_mid_gray() {
        let recon = Frame::new(32, 32);
        let p = dc_predict(&recon, 0, 0);
        assert!(p.iter().all(|&v| v == 128));
    }

    #[test]
    fn prediction_averages_neighbours() {
        let mut recon = Frame::new(32, 32);
        // Row above MB (16, 16) = 100, column left = 200.
        for dx in 0..16 {
            recon.set(16 + dx, 15, 100);
        }
        for dy in 0..16 {
            recon.set(15, 16 + dy, 200);
        }
        let p = dc_predict(&recon, 16, 16);
        assert!(p.iter().all(|&v| v == 150));
    }

    #[test]
    fn block_form_matches_frame_form() {
        // A frame with distinct neighbour content around MB (16, 16).
        let mut recon = Frame::new(48, 48);
        for dx in 0..16 {
            recon.set(16 + dx, 15, 40 + dx as u8);
        }
        for dy in 0..16 {
            recon.set(15, 16 + dy, 200 - dy as u8);
        }
        let above = recon.block(16, 0);
        let left = recon.block(0, 16);
        assert_eq!(
            dc_predict(&recon, 16, 16),
            dc_predict_blocks(Some(&above), Some(&left))
        );
        // Borders: no neighbours at all.
        assert_eq!(dc_predict(&recon, 0, 0), dc_predict_blocks(None, None));
        // Top row: left only.
        assert_eq!(
            dc_predict(&recon, 16, 0),
            dc_predict_blocks(None, Some(&recon.block(0, 0)))
        );
    }

    #[test]
    fn mode_decision_prefers_clearly_better_inter() {
        let target = [90u8; 256];
        let intra = [200u8; 256]; // terrible intra prediction
        let (mode, s) = decide_mode(&target, &intra, 300);
        assert_eq!(mode, MbMode::Inter);
        assert_eq!(s, 300);
    }

    #[test]
    fn mode_decision_prefers_intra_on_scene_cut() {
        let target = [90u8; 256];
        let intra = [91u8; 256]; // near-perfect intra
        let (mode, s) = decide_mode(&target, &intra, 20_000);
        assert_eq!(mode, MbMode::Intra);
        assert_eq!(s, 256);
    }

    #[test]
    fn tie_goes_to_intra_under_bias() {
        let target = [90u8; 256];
        let intra = [90u8; 256];
        // Equal SADs (0): the +128 bias keeps intra.
        let (mode, _) = decide_mode(&target, &intra, 0);
        assert_eq!(mode, MbMode::Intra);
    }
}
