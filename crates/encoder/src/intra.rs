//! DC intra prediction and the intra/inter mode decision.

use crate::frame::{sad, Frame, MB_SIZE};

/// Macroblock coding mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbMode {
    /// Predicted from spatial neighbours (always used on I-frames).
    Intra,
    /// Predicted by motion compensation from the reference frame.
    Inter,
}

/// DC intra prediction: predicts the whole macroblock as the mean of the
/// already-reconstructed pixels directly above and to the left (128 when
/// no neighbours exist, e.g. the top-left macroblock).
#[must_use]
pub fn dc_predict(recon: &Frame, ox: usize, oy: usize) -> [u8; MB_SIZE * MB_SIZE] {
    let mut sum = 0u32;
    let mut count = 0u32;
    if oy > 0 {
        for dx in 0..MB_SIZE {
            sum += u32::from(recon.get(ox + dx, oy - 1));
            count += 1;
        }
    }
    if ox > 0 {
        for dy in 0..MB_SIZE {
            sum += u32::from(recon.get(ox - 1, oy + dy));
            count += 1;
        }
    }
    let dc = sum
        .checked_div(count)
        .map_or(128, |v| u8::try_from(v).unwrap_or(255));
    [dc; MB_SIZE * MB_SIZE]
}

/// Chooses between the intra (DC) and inter (motion-compensated)
/// prediction by SAD, with a small bias toward inter (its motion vector
/// costs bits but tracks content better). Returns the mode and its SAD.
#[must_use]
pub fn decide_mode(
    target: &[u8; MB_SIZE * MB_SIZE],
    intra_pred: &[u8; MB_SIZE * MB_SIZE],
    inter_sad: u32,
) -> (MbMode, u32) {
    let intra_sad = sad(target, intra_pred);
    // 128 = empirical lambda for the MV signalling cost.
    if inter_sad + 128 <= intra_sad {
        (MbMode::Inter, inter_sad)
    } else {
        (MbMode::Intra, intra_sad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_left_macroblock_predicts_mid_gray() {
        let recon = Frame::new(32, 32);
        let p = dc_predict(&recon, 0, 0);
        assert!(p.iter().all(|&v| v == 128));
    }

    #[test]
    fn prediction_averages_neighbours() {
        let mut recon = Frame::new(32, 32);
        // Row above MB (16, 16) = 100, column left = 200.
        for dx in 0..16 {
            recon.set(16 + dx, 15, 100);
        }
        for dy in 0..16 {
            recon.set(15, 16 + dy, 200);
        }
        let p = dc_predict(&recon, 16, 16);
        assert!(p.iter().all(|&v| v == 150));
    }

    #[test]
    fn mode_decision_prefers_clearly_better_inter() {
        let target = [90u8; 256];
        let intra = [200u8; 256]; // terrible intra prediction
        let (mode, s) = decide_mode(&target, &intra, 300);
        assert_eq!(mode, MbMode::Inter);
        assert_eq!(s, 300);
    }

    #[test]
    fn mode_decision_prefers_intra_on_scene_cut() {
        let target = [90u8; 256];
        let intra = [91u8; 256]; // near-perfect intra
        let (mode, s) = decide_mode(&target, &intra, 20_000);
        assert_eq!(mode, MbMode::Intra);
        assert_eq!(s, 256);
    }

    #[test]
    fn tie_goes_to_intra_under_bias() {
        let target = [90u8; 256];
        let intra = [90u8; 256];
        // Equal SADs (0): the +128 bias keeps intra.
        let (mode, _) = decide_mode(&target, &intra, 0);
        assert_eq!(mode, MbMode::Intra);
    }
}
