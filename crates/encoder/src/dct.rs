//! 8×8 forward and inverse discrete cosine transform.
//!
//! Separable float implementation of the type-II DCT used by MPEG-class
//! codecs, with orthonormal scaling so `idct(dct(x)) == x` exactly for
//! the ±255 residual range (rounding absorbs the float error — see the
//! golden round-trip test).
//!
//! # Hot-path layout
//!
//! The basis cosines and orthonormal scale factors are *pinned* compile-
//! time constants ([`f32::from_bits`] literals bit-identical to the
//! `cos()`-derived values of the original scalar code), so the transform
//! never calls libm and cannot drift across math-library versions. Each
//! pass accumulates all eight outputs of a row/column in lockstep over
//! fixed-width `[f32; 8]` lanes — per-output operation order is unchanged
//! from the scalar reference (bit-identical results, verified in tests),
//! but the compiler can keep the lanes in vector registers. The original
//! per-multiply-`cos()` implementation is kept as
//! [`forward_reference`]/[`inverse_reference`] for equivalence tests and
//! the before/after kernel microbench.

/// Transform block edge (8×8 like MPEG-4; a 16×16 macroblock holds four
/// luma blocks).
pub const BLOCK: usize = 8;

const fn b(bits: u32) -> f32 {
    f32::from_bits(bits)
}

/// `BASIS[u][x] = cos(π·(2x+1)·u/16)`, bit-identical to the values the
/// reference implementation computes through `f32` `cos()`.
const BASIS: [[f32; BLOCK]; BLOCK] = [
    [
        b(0x3F80_0000),
        b(0x3F80_0000),
        b(0x3F80_0000),
        b(0x3F80_0000),
        b(0x3F80_0000),
        b(0x3F80_0000),
        b(0x3F80_0000),
        b(0x3F80_0000),
    ],
    [
        b(0x3F7B_14BE),
        b(0x3F54_DB31),
        b(0x3F0E_39D9),
        b(0x3E47_C5BC),
        b(0xBE47_C5C2),
        b(0xBF0E_39DC),
        b(0xBF54_DB32),
        b(0xBF7B_14BF),
    ],
    [
        b(0x3F6C_835E),
        b(0x3EC3_EF15),
        b(0xBEC3_EF18),
        b(0xBF6C_8360),
        b(0xBF6C_835E),
        b(0xBEC3_EF0B),
        b(0x3EC3_EF1B),
        b(0x3F6C_835F),
    ],
    [
        b(0x3F54_DB31),
        b(0xBE47_C5C2),
        b(0xBF7B_14BF),
        b(0xBF0E_39D6),
        b(0x3F0E_39D7),
        b(0x3F7B_14BE),
        b(0x3E47_C5B1),
        b(0xBF54_DB34),
    ],
    [
        b(0x3F35_04F3),
        b(0xBF35_04F3),
        b(0xBF35_04F1),
        b(0x3F35_04F7),
        b(0x3F35_04F3),
        b(0xBF35_04FB),
        b(0xBF35_04EF),
        b(0x3F35_04F4),
    ],
    [
        b(0x3F0E_39D9),
        b(0xBF7B_14BF),
        b(0x3E47_C5C8),
        b(0x3F54_DB2D),
        b(0xBF54_DB34),
        b(0xBE47_C57C),
        b(0x3F7B_14BF),
        b(0xBF0E_39D7),
    ],
    [
        b(0x3EC3_EF15),
        b(0xBF6C_835E),
        b(0x3F6C_8362),
        b(0xBEC3_EF25),
        b(0xBEC3_EF23),
        b(0x3F6C_835B),
        b(0xBF6C_8362),
        b(0x3EC3_EF25),
    ],
    [
        b(0x3E47_C5BC),
        b(0xBF0E_39D6),
        b(0x3F54_DB2D),
        b(0xBF7B_14BD),
        b(0x3F7B_14BE),
        b(0xBF54_DB3A),
        b(0x3F0E_39E9),
        b(0xBE47_C596),
    ],
];

/// `BASIS_T[x][u] = BASIS[u][x]`: transposed for unit-stride access when
/// the eight frequency outputs `u` are the vector lane.
const BASIS_T: [[f32; BLOCK]; BLOCK] = transpose(BASIS);

/// Orthonormal scale: `√(1/8)` for `u = 0`, `√(2/8)` otherwise — pinned
/// like [`BASIS`].
const SCALE: [f32; BLOCK] = [
    b(0x3EB5_04F3),
    b(0x3F00_0000),
    b(0x3F00_0000),
    b(0x3F00_0000),
    b(0x3F00_0000),
    b(0x3F00_0000),
    b(0x3F00_0000),
    b(0x3F00_0000),
];

const fn transpose(m: [[f32; BLOCK]; BLOCK]) -> [[f32; BLOCK]; BLOCK] {
    let mut out = [[0f32; BLOCK]; BLOCK];
    let mut i = 0;
    while i < BLOCK {
        let mut j = 0;
        while j < BLOCK {
            out[j][i] = m[i][j];
            j += 1;
        }
        i += 1;
    }
    out
}

/// Forward 8×8 DCT of a residual block (row-major `i16`, range roughly
/// ±255 after prediction). Returns coefficients as `f32`.
///
/// Bit-identical to [`forward_reference`]: the lane restructuring only
/// hoists loop-invariant loads — every output still accumulates its
/// terms in the same order.
#[must_use]
pub fn forward(input: &[i16; BLOCK * BLOCK]) -> [f32; BLOCK * BLOCK] {
    let mut tmp = [0f32; BLOCK * BLOCK];
    let mut out = [0f32; BLOCK * BLOCK];
    // Rows: all 8 frequency outputs of one row accumulate in lockstep.
    for y in 0..BLOCK {
        let row = &input[y * BLOCK..y * BLOCK + BLOCK];
        let mut acc = [0f32; BLOCK];
        for x in 0..BLOCK {
            let s = f32::from(row[x]);
            let basis = &BASIS_T[x];
            for u in 0..BLOCK {
                acc[u] += s * basis[u];
            }
        }
        for u in 0..BLOCK {
            tmp[y * BLOCK + u] = acc[u] * SCALE[u];
        }
    }
    // Columns: one output row `v` at a time, `u` as the lane.
    for v in 0..BLOCK {
        let mut acc = [0f32; BLOCK];
        for y in 0..BLOCK {
            let by = BASIS[v][y];
            let trow = &tmp[y * BLOCK..y * BLOCK + BLOCK];
            for u in 0..BLOCK {
                acc[u] += trow[u] * by;
            }
        }
        let sv = SCALE[v];
        for u in 0..BLOCK {
            out[v * BLOCK + u] = acc[u] * sv;
        }
    }
    out
}

/// Inverse 8×8 DCT back to spatial residuals (`i16`).
///
/// Bit-identical to [`inverse_reference`] (same per-output term order
/// and association, `(scale·coeff)·basis`).
#[must_use]
pub fn inverse(coeffs: &[f32; BLOCK * BLOCK]) -> [i16; BLOCK * BLOCK] {
    let mut tmp = [0f32; BLOCK * BLOCK];
    let mut out = [0i16; BLOCK * BLOCK];
    // Columns: one spatial row `y` at a time, `u` as the lane.
    for y in 0..BLOCK {
        let mut acc = [0f32; BLOCK];
        for v in 0..BLOCK {
            let sv = SCALE[v];
            let bv = BASIS[v][y];
            let crow = &coeffs[v * BLOCK..v * BLOCK + BLOCK];
            for u in 0..BLOCK {
                acc[u] += sv * crow[u] * bv;
            }
        }
        tmp[y * BLOCK..y * BLOCK + BLOCK].copy_from_slice(&acc);
    }
    // Rows: all 8 spatial outputs of one row accumulate in lockstep.
    for y in 0..BLOCK {
        let mut acc = [0f32; BLOCK];
        for u in 0..BLOCK {
            let t = SCALE[u] * tmp[y * BLOCK + u];
            let basis = &BASIS[u];
            for x in 0..BLOCK {
                acc[x] += t * basis[x];
            }
        }
        for x in 0..BLOCK {
            out[y * BLOCK + x] = acc[x].round().clamp(-4096.0, 4096.0) as i16;
        }
    }
    out
}

/// Reference scalar forward DCT: the original per-multiply-`cos()`
/// implementation, kept for equivalence tests and the before/after
/// kernel microbench.
#[must_use]
pub fn forward_reference(input: &[i16; BLOCK * BLOCK]) -> [f32; BLOCK * BLOCK] {
    let mut tmp = [0f32; BLOCK * BLOCK];
    let mut out = [0f32; BLOCK * BLOCK];
    // Rows.
    for y in 0..BLOCK {
        for u in 0..BLOCK {
            let mut acc = 0f32;
            for x in 0..BLOCK {
                acc += f32::from(input[y * BLOCK + x]) * basis(x, u);
            }
            tmp[y * BLOCK + u] = acc * scale(u);
        }
    }
    // Columns.
    for u in 0..BLOCK {
        for v in 0..BLOCK {
            let mut acc = 0f32;
            for y in 0..BLOCK {
                acc += tmp[y * BLOCK + u] * basis(y, v);
            }
            out[v * BLOCK + u] = acc * scale(v);
        }
    }
    out
}

/// Reference scalar inverse DCT (see [`forward_reference`]).
#[must_use]
pub fn inverse_reference(coeffs: &[f32; BLOCK * BLOCK]) -> [i16; BLOCK * BLOCK] {
    let mut tmp = [0f32; BLOCK * BLOCK];
    let mut out = [0i16; BLOCK * BLOCK];
    // Columns.
    for u in 0..BLOCK {
        for y in 0..BLOCK {
            let mut acc = 0f32;
            for v in 0..BLOCK {
                acc += scale(v) * coeffs[v * BLOCK + u] * basis(y, v);
            }
            tmp[y * BLOCK + u] = acc;
        }
    }
    // Rows.
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = 0f32;
            for u in 0..BLOCK {
                acc += scale(u) * tmp[y * BLOCK + u] * basis(x, u);
            }
            out[y * BLOCK + x] = acc.round().clamp(-4096.0, 4096.0) as i16;
        }
    }
    out
}

#[inline]
fn basis(x: usize, u: usize) -> f32 {
    let angle = std::f32::consts::PI * (2.0 * x as f32 + 1.0) * u as f32 / (2.0 * BLOCK as f32);
    angle.cos()
}

#[inline]
fn scale(u: usize) -> f32 {
    if u == 0 {
        (1.0 / BLOCK as f32).sqrt()
    } else {
        (2.0 / BLOCK as f32).sqrt()
    }
}

/// Splits a 16×16 macroblock residual into its four 8×8 blocks
/// (row-major: top-left, top-right, bottom-left, bottom-right).
#[must_use]
pub fn split_macroblock(res: &[i16; 256]) -> [[i16; BLOCK * BLOCK]; 4] {
    let mut out = [[0i16; BLOCK * BLOCK]; 4];
    for (b, block) in out.iter_mut().enumerate() {
        let ox = (b % 2) * BLOCK;
        let oy = (b / 2) * BLOCK;
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                block[y * BLOCK + x] = res[(oy + y) * 16 + ox + x];
            }
        }
    }
    out
}

/// Reassembles four 8×8 blocks into a 16×16 macroblock residual.
#[must_use]
pub fn merge_macroblock(blocks: &[[i16; BLOCK * BLOCK]; 4]) -> [i16; 256] {
    let mut out = [0i16; 256];
    for (b, block) in blocks.iter().enumerate() {
        let ox = (b % 2) * BLOCK;
        let oy = (b / 2) * BLOCK;
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                out[(oy + y) * 16 + ox + x] = block[y * BLOCK + x];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_block_transforms_to_single_coefficient() {
        let input = [64i16; 64];
        let c = forward(&input);
        // DC = 8 * 64 = 512 with orthonormal scaling.
        assert!((c[0] - 512.0).abs() < 0.01, "DC = {}", c[0]);
        for (i, &v) in c.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.01, "AC[{i}] = {v}");
        }
    }

    #[test]
    fn lut_is_bit_identical_to_the_cos_derived_values() {
        for u in 0..BLOCK {
            for x in 0..BLOCK {
                assert_eq!(
                    BASIS[u][x].to_bits(),
                    basis(x, u).to_bits(),
                    "BASIS[{u}][{x}]"
                );
                assert_eq!(BASIS_T[x][u].to_bits(), BASIS[u][x].to_bits());
            }
            assert_eq!(SCALE[u].to_bits(), scale(u).to_bits(), "SCALE[{u}]");
        }
    }

    /// Deterministic pseudo-random residual in the full ±255 range.
    fn lcg_block(seed: &mut u64) -> [i16; 64] {
        let mut out = [0i16; 64];
        for v in out.iter_mut() {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((*seed >> 33) % 511) as i16 - 255;
        }
        out
    }

    #[test]
    fn vectorized_transforms_match_the_scalar_reference_bit_for_bit() {
        let mut seed = 0x5eed_cafe_u64;
        for _ in 0..64 {
            let input = lcg_block(&mut seed);
            let f_new = forward(&input);
            let f_ref = forward_reference(&input);
            for (i, (a, b)) in f_new.iter().zip(f_ref.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "forward coeff {i}");
            }
            assert_eq!(inverse(&f_new), inverse_reference(&f_ref));
        }
    }

    #[test]
    fn roundtrip_is_exact_for_the_full_residual_range() {
        // Impulses at every position across the whole ±255 magnitude
        // range, the extreme constant blocks, and random dense blocks:
        // `idct(dct(x))` must reproduce `x` *exactly* — the float error
        // of the orthonormal 8×8 transform stays below the rounding
        // threshold everywhere in the residual domain.
        let mut cases: Vec<[i16; 64]> = Vec::new();
        for pos in 0..64 {
            for mag in [-255i16, -200, -128, -1, 1, 127, 200, 255] {
                let mut blk = [0i16; 64];
                blk[pos] = mag;
                cases.push(blk);
            }
        }
        cases.push([255i16; 64]);
        cases.push([-255i16; 64]);
        cases.push(std::array::from_fn(|i| if i % 2 == 0 { 255 } else { -255 }));
        let mut seed = 0xfeed_f00d_u64;
        for _ in 0..256 {
            cases.push(lcg_block(&mut seed));
        }
        for (n, input) in cases.iter().enumerate() {
            let back = inverse(&forward(input));
            assert_eq!(&back, input, "case {n} did not round-trip exactly");
        }
    }

    #[test]
    fn roundtrip_is_exact_up_to_rounding() {
        let mut input = [0i16; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i as i16 * 7) % 255) - 127;
        }
        let back = inverse(&forward(&input));
        for (a, b) in input.iter().zip(back.iter()) {
            assert!((a - b).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let mut input = [0i16; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = (((i * 37) % 200) as i16) - 100;
        }
        let spatial: f64 = input.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let freq: f64 = forward(&input)
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum();
        assert!(
            (spatial - freq).abs() / spatial < 1e-4,
            "{spatial} vs {freq}"
        );
    }

    #[test]
    fn split_merge_roundtrip() {
        let mut res = [0i16; 256];
        for (i, v) in res.iter_mut().enumerate() {
            *v = i as i16 - 128;
        }
        assert_eq!(merge_macroblock(&split_macroblock(&res)), res);
    }

    #[test]
    fn split_addresses_quadrants() {
        let mut res = [0i16; 256];
        res[0] = 1; // top-left quadrant
        res[8] = 2; // top-right
        res[8 * 16] = 3; // bottom-left
        res[8 * 16 + 8] = 4; // bottom-right
        let blocks = split_macroblock(&res);
        assert_eq!(blocks[0][0], 1);
        assert_eq!(blocks[1][0], 2);
        assert_eq!(blocks[2][0], 3);
        assert_eq!(blocks[3][0], 4);
    }
}
