//! 8×8 forward and inverse discrete cosine transform.
//!
//! Separable float implementation of the type-II DCT used by MPEG-class
//! codecs, with orthonormal scaling so `idct(dct(x)) == x` up to rounding.

/// Transform block edge (8×8 like MPEG-4; a 16×16 macroblock holds four
/// luma blocks).
pub const BLOCK: usize = 8;

/// Forward 8×8 DCT of a residual block (row-major `i16`, range roughly
/// ±255 after prediction). Returns coefficients as `f32`.
#[must_use]
pub fn forward(input: &[i16; BLOCK * BLOCK]) -> [f32; BLOCK * BLOCK] {
    let mut tmp = [0f32; BLOCK * BLOCK];
    let mut out = [0f32; BLOCK * BLOCK];
    // Rows.
    for y in 0..BLOCK {
        for u in 0..BLOCK {
            let mut acc = 0f32;
            for x in 0..BLOCK {
                acc += f32::from(input[y * BLOCK + x]) * basis(x, u);
            }
            tmp[y * BLOCK + u] = acc * scale(u);
        }
    }
    // Columns.
    for u in 0..BLOCK {
        for v in 0..BLOCK {
            let mut acc = 0f32;
            for y in 0..BLOCK {
                acc += tmp[y * BLOCK + u] * basis(y, v);
            }
            out[v * BLOCK + u] = acc * scale(v);
        }
    }
    out
}

/// Inverse 8×8 DCT back to spatial residuals (`i16`).
#[must_use]
pub fn inverse(coeffs: &[f32; BLOCK * BLOCK]) -> [i16; BLOCK * BLOCK] {
    let mut tmp = [0f32; BLOCK * BLOCK];
    let mut out = [0i16; BLOCK * BLOCK];
    // Columns.
    for u in 0..BLOCK {
        for y in 0..BLOCK {
            let mut acc = 0f32;
            for v in 0..BLOCK {
                acc += scale(v) * coeffs[v * BLOCK + u] * basis(y, v);
            }
            tmp[y * BLOCK + u] = acc;
        }
    }
    // Rows.
    for y in 0..BLOCK {
        for x in 0..BLOCK {
            let mut acc = 0f32;
            for u in 0..BLOCK {
                acc += scale(u) * tmp[y * BLOCK + u] * basis(x, u);
            }
            out[y * BLOCK + x] = acc.round().clamp(-4096.0, 4096.0) as i16;
        }
    }
    out
}

#[inline]
fn basis(x: usize, u: usize) -> f32 {
    let angle = std::f32::consts::PI * (2.0 * x as f32 + 1.0) * u as f32 / (2.0 * BLOCK as f32);
    angle.cos()
}

#[inline]
fn scale(u: usize) -> f32 {
    if u == 0 {
        (1.0 / BLOCK as f32).sqrt()
    } else {
        (2.0 / BLOCK as f32).sqrt()
    }
}

/// Splits a 16×16 macroblock residual into its four 8×8 blocks
/// (row-major: top-left, top-right, bottom-left, bottom-right).
#[must_use]
pub fn split_macroblock(res: &[i16; 256]) -> [[i16; BLOCK * BLOCK]; 4] {
    let mut out = [[0i16; BLOCK * BLOCK]; 4];
    for (b, block) in out.iter_mut().enumerate() {
        let ox = (b % 2) * BLOCK;
        let oy = (b / 2) * BLOCK;
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                block[y * BLOCK + x] = res[(oy + y) * 16 + ox + x];
            }
        }
    }
    out
}

/// Reassembles four 8×8 blocks into a 16×16 macroblock residual.
#[must_use]
pub fn merge_macroblock(blocks: &[[i16; BLOCK * BLOCK]; 4]) -> [i16; 256] {
    let mut out = [0i16; 256];
    for (b, block) in blocks.iter().enumerate() {
        let ox = (b % 2) * BLOCK;
        let oy = (b / 2) * BLOCK;
        for y in 0..BLOCK {
            for x in 0..BLOCK {
                out[(oy + y) * 16 + ox + x] = block[y * BLOCK + x];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_block_transforms_to_single_coefficient() {
        let input = [64i16; 64];
        let c = forward(&input);
        // DC = 8 * 64 = 512 with orthonormal scaling.
        assert!((c[0] - 512.0).abs() < 0.01, "DC = {}", c[0]);
        for (i, &v) in c.iter().enumerate().skip(1) {
            assert!(v.abs() < 0.01, "AC[{i}] = {v}");
        }
    }

    #[test]
    fn roundtrip_is_exact_up_to_rounding() {
        let mut input = [0i16; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i as i16 * 7) % 255) - 127;
        }
        let back = inverse(&forward(&input));
        for (a, b) in input.iter().zip(back.iter()) {
            assert!((a - b).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let mut input = [0i16; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = (((i * 37) % 200) as i16) - 100;
        }
        let spatial: f64 = input.iter().map(|&v| f64::from(v) * f64::from(v)).sum();
        let freq: f64 = forward(&input)
            .iter()
            .map(|&v| f64::from(v) * f64::from(v))
            .sum();
        assert!(
            (spatial - freq).abs() / spatial < 1e-4,
            "{spatial} vs {freq}"
        );
    }

    #[test]
    fn split_merge_roundtrip() {
        let mut res = [0i16; 256];
        for (i, v) in res.iter_mut().enumerate() {
            *v = i as i16 - 128;
        }
        assert_eq!(merge_macroblock(&split_macroblock(&res)), res);
    }

    #[test]
    fn split_addresses_quadrants() {
        let mut res = [0i16; 256];
        res[0] = 1; // top-left quadrant
        res[8] = 2; // top-right
        res[8 * 16] = 3; // bottom-left
        res[8 * 16 + 8] = 4; // bottom-right
        let blocks = split_macroblock(&res);
        assert_eq!(blocks[0][0], 1);
        assert_eq!(blocks[1][0], 2);
        assert_eq!(blocks[2][0], 3);
        assert_eq!(blocks[3][0], 4);
    }
}
