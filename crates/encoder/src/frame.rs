//! Luma frames and macroblock addressing.

use std::fmt;

/// Macroblock edge length in pixels (16×16 = the paper's "macroblocks of
/// 256 pixels").
pub const MB_SIZE: usize = 16;

/// A grayscale (luma) frame whose dimensions are multiples of 16.
///
/// # Example
///
/// ```
/// use fgqos_encoder::frame::{Frame, MB_SIZE};
///
/// let f = Frame::new(48, 32);
/// assert_eq!(f.macroblocks(), 6);
/// assert_eq!(f.mb_origin(4), (MB_SIZE, MB_SIZE));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Frame {
    /// Creates a black frame.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are positive multiples of
    /// [`MB_SIZE`].
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0
                && height > 0
                && width.is_multiple_of(MB_SIZE)
                && height.is_multiple_of(MB_SIZE),
            "frame dimensions must be positive multiples of {MB_SIZE}"
        );
        Frame {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of macroblocks (`width/16 · height/16`).
    #[must_use]
    pub fn macroblocks(&self) -> usize {
        (self.width / MB_SIZE) * (self.height / MB_SIZE)
    }

    /// Macroblocks per row.
    #[must_use]
    pub fn mb_cols(&self) -> usize {
        self.width / MB_SIZE
    }

    /// Pixel origin `(x, y)` of macroblock `mb` (row-major order).
    ///
    /// # Panics
    ///
    /// Panics if `mb >= macroblocks()`.
    #[must_use]
    pub fn mb_origin(&self, mb: usize) -> (usize, usize) {
        assert!(mb < self.macroblocks(), "macroblock index out of range");
        let cols = self.mb_cols();
        ((mb % cols) * MB_SIZE, (mb / cols) * MB_SIZE)
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    #[inline]
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.data[y * self.width + x] = v;
    }

    /// Pixel at signed coordinates, clamped to the frame border
    /// (unrestricted motion vectors sample the edge pixels).
    #[inline]
    #[must_use]
    pub fn get_clamped(&self, x: i32, y: i32) -> u8 {
        let xi = x.clamp(0, self.width as i32 - 1) as usize;
        let yi = y.clamp(0, self.height as i32 - 1) as usize;
        self.data[yi * self.width + xi]
    }

    /// Copies the 16×16 macroblock at `(ox, oy)` into a flat 256-byte
    /// array.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit in the frame.
    #[must_use]
    pub fn block(&self, ox: usize, oy: usize) -> [u8; MB_SIZE * MB_SIZE] {
        assert!(ox + MB_SIZE <= self.width && oy + MB_SIZE <= self.height);
        let mut out = [0u8; MB_SIZE * MB_SIZE];
        for dy in 0..MB_SIZE {
            let row = (oy + dy) * self.width + ox;
            out[dy * MB_SIZE..(dy + 1) * MB_SIZE].copy_from_slice(&self.data[row..row + MB_SIZE]);
        }
        out
    }

    /// 16×16 block sampled at a *signed* origin with border clamping
    /// (motion-compensated prediction).
    #[must_use]
    pub fn block_clamped(&self, ox: i32, oy: i32) -> [u8; MB_SIZE * MB_SIZE] {
        let mut out = [0u8; MB_SIZE * MB_SIZE];
        for dy in 0..MB_SIZE {
            for dx in 0..MB_SIZE {
                out[dy * MB_SIZE + dx] = self.get_clamped(ox + dx as i32, oy + dy as i32);
            }
        }
        out
    }

    /// Writes a 256-byte block at macroblock origin `(ox, oy)`.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit in the frame.
    pub fn write_block(&mut self, ox: usize, oy: usize, block: &[u8; MB_SIZE * MB_SIZE]) {
        assert!(ox + MB_SIZE <= self.width && oy + MB_SIZE <= self.height);
        for dy in 0..MB_SIZE {
            let row = (oy + dy) * self.width + ox;
            self.data[row..row + MB_SIZE].copy_from_slice(&block[dy * MB_SIZE..(dy + 1) * MB_SIZE]);
        }
    }

    /// SAD between `target` and the clamped 16×16 block at signed origin
    /// `(ox, oy)`, with a row-wise early bail once the running sum
    /// exceeds `limit`.
    ///
    /// The return value is the *exact* SAD whenever it is `<= limit`;
    /// above the limit it may be any partial sum that is `> limit` (the
    /// running sum is monotone, so a bail can only happen when the true
    /// SAD also exceeds the limit). This lets motion search pass its
    /// current best as the limit and skip the tail of hopeless
    /// candidates without ever changing which candidate wins — ties at
    /// exactly `limit` are still summed in full.
    ///
    /// Fully interior origins read their rows straight from the frame
    /// (no border clamping, no 256-byte staging copy).
    #[must_use]
    pub fn sad_block_clamped_bounded(
        &self,
        target: &[u8; MB_SIZE * MB_SIZE],
        ox: i32,
        oy: i32,
        limit: u32,
    ) -> u32 {
        let mut total = 0u32;
        let interior = ox >= 0
            && oy >= 0
            && ox as usize + MB_SIZE <= self.width
            && oy as usize + MB_SIZE <= self.height;
        if interior {
            let (ox, oy) = (ox as usize, oy as usize);
            for dy in 0..MB_SIZE {
                let row = (oy + dy) * self.width + ox;
                let cand = &self.data[row..row + MB_SIZE];
                let trow = &target[dy * MB_SIZE..(dy + 1) * MB_SIZE];
                let mut acc = 0u32;
                for (&t, &c) in trow.iter().zip(cand) {
                    acc += u32::from(t.abs_diff(c));
                }
                total += acc;
                if total > limit {
                    return total;
                }
            }
        } else {
            for dy in 0..MB_SIZE {
                let yi = (oy + dy as i32).clamp(0, self.height as i32 - 1) as usize;
                let base = yi * self.width;
                let trow = &target[dy * MB_SIZE..(dy + 1) * MB_SIZE];
                let mut acc = 0u32;
                for (dx, &t) in trow.iter().enumerate() {
                    let xi = (ox + dx as i32).clamp(0, self.width as i32 - 1) as usize;
                    acc += u32::from(t.abs_diff(self.data[base + xi]));
                }
                total += acc;
                if total > limit {
                    return total;
                }
            }
        }
        total
    }

    /// Raw pixel data, row-major.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw pixel data, row-major.
    #[must_use]
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} luma frame", self.width, self.height)
    }
}

/// Sum of absolute differences between two 256-byte blocks, the metric of
/// motion estimation and the intra/inter decision.
#[must_use]
pub fn sad(a: &[u8; MB_SIZE * MB_SIZE], b: &[u8; MB_SIZE * MB_SIZE]) -> u32 {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| u32::from(x.abs_diff(y)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_must_be_mb_multiples() {
        assert!(std::panic::catch_unwind(|| Frame::new(17, 16)).is_err());
        assert!(std::panic::catch_unwind(|| Frame::new(0, 16)).is_err());
        let f = Frame::new(32, 16);
        assert_eq!(f.macroblocks(), 2);
        assert_eq!(f.mb_cols(), 2);
    }

    #[test]
    fn mb_origins_are_row_major() {
        let f = Frame::new(48, 32);
        assert_eq!(f.mb_origin(0), (0, 0));
        assert_eq!(f.mb_origin(2), (32, 0));
        assert_eq!(f.mb_origin(3), (0, 16));
        assert_eq!(f.mb_origin(5), (32, 16));
    }

    #[test]
    fn block_roundtrip() {
        let mut f = Frame::new(32, 32);
        let mut blk = [0u8; 256];
        for (i, v) in blk.iter_mut().enumerate() {
            *v = (i % 251) as u8;
        }
        f.write_block(16, 16, &blk);
        assert_eq!(f.block(16, 16), blk);
        assert_eq!(f.get(16, 16), 0);
        assert_eq!(f.get(17, 16), 1);
    }

    #[test]
    fn clamped_access_extends_borders() {
        let mut f = Frame::new(16, 16);
        f.set(0, 0, 200);
        f.set(15, 15, 99);
        assert_eq!(f.get_clamped(-5, -5), 200);
        assert_eq!(f.get_clamped(20, 20), 99);
        let blk = f.block_clamped(-16, -16);
        assert_eq!(blk[0], 200);
    }

    #[test]
    fn sad_counts_absolute_differences() {
        let a = [10u8; 256];
        let mut b = [10u8; 256];
        b[0] = 15;
        b[1] = 5;
        assert_eq!(sad(&a, &b), 10);
        assert_eq!(sad(&a, &a), 0);
    }

    #[test]
    fn bounded_sad_is_exact_up_to_the_limit() {
        let mut f = Frame::new(48, 32);
        let mut seed = 0x5ad_cafe_u64;
        for p in f.data_mut() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *p = (seed >> 33) as u8;
        }
        let target = f.block(16, 16);
        // Interior and border origins, with and without a binding limit.
        for (ox, oy) in [(16, 16), (18, 15), (0, 0), (-7, -3), (40, 20), (45, 29)] {
            let exact = sad(&target, &f.block_clamped(ox, oy));
            assert_eq!(
                f.sad_block_clamped_bounded(&target, ox, oy, u32::MAX),
                exact
            );
            assert_eq!(f.sad_block_clamped_bounded(&target, ox, oy, exact), exact);
            if exact > 0 {
                let bailed = f.sad_block_clamped_bounded(&target, ox, oy, exact - 1);
                assert!(bailed > exact - 1, "bail must exceed the limit");
                assert!(bailed <= exact, "partial sums never exceed the true SAD");
            }
        }
    }

    #[test]
    fn display_mentions_dims() {
        assert_eq!(Frame::new(32, 16).to_string(), "32x16 luma frame");
    }
}
