//! Entropy coding: zigzag scan, run-length pairs, Exp-Golomb bitstream.
//!
//! The `Compress` action of the pipeline. A matching decoder exists so
//! roundtrip tests can prove the bitstream is genuinely decodable — the
//! bit counts driving rate control and the Compress action's work units
//! are real.

use crate::dct::BLOCK;

/// Zigzag scan order for an 8×8 block.
#[must_use]
pub fn zigzag_order() -> [usize; BLOCK * BLOCK] {
    let mut order = [0usize; BLOCK * BLOCK];
    let mut idx = 0;
    for s in 0..(2 * BLOCK - 1) {
        let coords: Vec<(usize, usize)> = (0..=s.min(BLOCK - 1))
            .filter_map(|i| {
                let j = s - i;
                (j < BLOCK).then_some((i, j))
            })
            .collect();
        // Even diagonals run upward, odd downward.
        if s % 2 == 0 {
            for &(i, j) in coords.iter().rev() {
                order[idx] = i * BLOCK + j;
                idx += 1;
            }
        } else {
            for &(i, j) in &coords {
                order[idx] = i * BLOCK + j;
                idx += 1;
            }
        }
    }
    order
}

/// A growable bitstream writer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer that reuses `buf`'s allocation (its
    /// contents are cleared). The per-macroblock compress kernel round-
    /// trips its stream buffer through this to stop allocating per
    /// block; the written bytes are identical to a fresh writer's.
    #[must_use]
    pub fn from_vec(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BitWriter {
            bytes: buf,
            bit_len: 0,
        }
    }

    /// Appends one bit.
    pub fn put_bit(&mut self, bit: bool) {
        if self.bit_len.is_multiple_of(8) {
            self.bytes.push(0);
        }
        if bit {
            let byte = self.bit_len / 8;
            self.bytes[byte] |= 1 << (7 - self.bit_len % 8);
        }
        self.bit_len += 1;
    }

    /// Appends `count` bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn put_bits(&mut self, value: u64, count: u32) {
        assert!(count <= 64);
        for i in (0..count).rev() {
            self.put_bit(value >> i & 1 == 1);
        }
    }

    /// Unsigned Exp-Golomb code of `value`.
    pub fn put_ue(&mut self, value: u64) {
        let v = value + 1;
        let bits = 64 - v.leading_zeros();
        for _ in 0..bits - 1 {
            self.put_bit(false);
        }
        self.put_bits(v, bits);
    }

    /// Signed Exp-Golomb code (0, 1, −1, 2, −2, ... mapping).
    pub fn put_se(&mut self, value: i64) {
        let mapped = if value > 0 {
            (value as u64) * 2 - 1
        } else {
            (-value as u64) * 2
        };
        self.put_ue(mapped);
    }

    /// Total bits written.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finishes and returns the byte buffer (zero-padded).
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A bitstream reader matching [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a byte buffer.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit; `None` at end of stream.
    pub fn bit(&mut self) -> Option<bool> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return None;
        }
        let bit = self.bytes[byte] >> (7 - self.pos % 8) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `count` bits MSB-first.
    pub fn bits(&mut self, count: u32) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..count {
            v = v << 1 | u64::from(self.bit()?);
        }
        Some(v)
    }

    /// Reads an unsigned Exp-Golomb code.
    pub fn ue(&mut self) -> Option<u64> {
        let mut zeros = 0u32;
        while !self.bit()? {
            zeros += 1;
            if zeros > 63 {
                return None;
            }
        }
        let rest = self.bits(zeros)?;
        Some((1u64 << zeros | rest) - 1)
    }

    /// Reads a signed Exp-Golomb code.
    pub fn se(&mut self) -> Option<i64> {
        let v = self.ue()?;
        Some(if v % 2 == 1 {
            v.div_ceil(2) as i64
        } else {
            -((v / 2) as i64)
        })
    }

    /// Bits consumed so far.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// Encodes one quantized 8×8 block as `(run, level)` pairs in zigzag
/// order, terminated by an end-of-block marker. Returns bits written.
pub fn encode_block(w: &mut BitWriter, levels: &[i16; BLOCK * BLOCK]) -> usize {
    let start = w.bit_len();
    let order = zigzag_order();
    let mut run = 0u64;
    for &pos in order.iter() {
        let l = levels[pos];
        if l == 0 {
            run += 1;
        } else {
            w.put_ue(run);
            w.put_se(i64::from(l));
            run = 0;
        }
    }
    // End of block: run code 63 + level 0 sentinel (level 0 is otherwise
    // never coded, so it is unambiguous).
    w.put_ue(63);
    w.put_se(0);
    w.bit_len() - start
}

/// Decodes one 8×8 block written by [`encode_block`].
#[must_use]
pub fn decode_block(r: &mut BitReader<'_>) -> Option<[i16; BLOCK * BLOCK]> {
    let order = zigzag_order();
    let mut out = [0i16; BLOCK * BLOCK];
    let mut idx = 0usize;
    loop {
        let run = r.ue()?;
        let level = r.se()?;
        if level == 0 {
            // End of block (run is the 63 sentinel by construction).
            return Some(out);
        }
        idx += run as usize;
        if idx >= order.len() {
            return None; // corrupt stream
        }
        out[order[idx]] = i16::try_from(level).ok()?;
        idx += 1;
    }
}

/// Encodes a motion vector (signed Exp-Golomb per component). Returns
/// bits written.
pub fn encode_mv(w: &mut BitWriter, mv: (i32, i32)) -> usize {
    let start = w.bit_len();
    w.put_se(i64::from(mv.0));
    w.put_se(i64::from(mv.1));
    w.bit_len() - start
}

/// Decodes a motion vector.
#[must_use]
pub fn decode_mv(r: &mut BitReader<'_>) -> Option<(i32, i32)> {
    let x = r.se()?;
    let y = r.se()?;
    Some((i32::try_from(x).ok()?, i32::try_from(y).ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let order = zigzag_order();
        let mut seen = [false; 64];
        for &i in &order {
            assert!(!seen[i], "duplicate {i}");
            seen[i] = true;
        }
        // Standard start: 0, then (0,1), (1,0) -> indices 1, 8...
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1);
        assert_eq!(order[2], 8);
        assert_eq!(order[63], 63);
    }

    #[test]
    fn bitwriter_reader_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_ue(0);
        w.put_ue(5);
        w.put_se(-3);
        w.put_se(7);
        let bits = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(4), Some(0b1011));
        assert_eq!(r.ue(), Some(0));
        assert_eq!(r.ue(), Some(5));
        assert_eq!(r.se(), Some(-3));
        assert_eq!(r.se(), Some(7));
        assert_eq!(r.position(), bits);
    }

    #[test]
    fn exp_golomb_exhaustive_roundtrip() {
        let mut w = BitWriter::new();
        for v in 0..300u64 {
            w.put_ue(v);
        }
        for v in -80i64..=80 {
            w.put_se(v);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for v in 0..300u64 {
            assert_eq!(r.ue(), Some(v));
        }
        for v in -80i64..=80 {
            assert_eq!(r.se(), Some(v));
        }
    }

    #[test]
    fn block_roundtrip_sparse_and_dense() {
        let mut sparse = [0i16; 64];
        sparse[0] = 45;
        sparse[10] = -3;
        sparse[63] = 1;
        let mut dense = [0i16; 64];
        for (i, v) in dense.iter_mut().enumerate() {
            *v = (i as i16 % 17) - 8;
        }
        for block in [sparse, dense, [0i16; 64]] {
            let mut w = BitWriter::new();
            let bits = encode_block(&mut w, &block);
            assert!(bits > 0);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(decode_block(&mut r), Some(block));
        }
    }

    #[test]
    fn sparser_blocks_cost_fewer_bits() {
        let mut sparse = [0i16; 64];
        sparse[0] = 5;
        let mut dense = [0i16; 64];
        for (i, v) in dense.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 3 } else { -3 };
        }
        let mut w1 = BitWriter::new();
        let b1 = encode_block(&mut w1, &sparse);
        let mut w2 = BitWriter::new();
        let b2 = encode_block(&mut w2, &dense);
        assert!(b1 < b2);
    }

    #[test]
    fn from_vec_reuses_the_allocation_and_writes_identically() {
        let mut reference = BitWriter::new();
        reference.put_ue(41);
        reference.put_se(-7);
        reference.put_bits(0b101, 3);
        let expected = reference.into_bytes();

        let stale = vec![0xFFu8; 64]; // dirty contents must not leak
        let cap = stale.capacity();
        let ptr = stale.as_ptr();
        let mut w = BitWriter::from_vec(stale);
        assert_eq!(w.bit_len(), 0);
        w.put_ue(41);
        w.put_se(-7);
        w.put_bits(0b101, 3);
        let bytes = w.into_bytes();
        assert_eq!(bytes, expected);
        assert_eq!(bytes.capacity(), cap, "allocation must be reused");
        assert_eq!(bytes.as_ptr(), ptr, "allocation must be reused");
    }

    #[test]
    fn mv_roundtrip() {
        for mv in [(0, 0), (-16, 16), (7, -3)] {
            let mut w = BitWriter::new();
            encode_mv(&mut w, mv);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(decode_mv(&mut r), Some(mv));
        }
    }

    #[test]
    fn reader_handles_truncation() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.bit(), None);
        assert_eq!(r.ue(), None);
        // A lonely zero byte is all zeros: ue runs out of stream.
        let bytes = [0u8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.ue(), None);
    }
}
