//! [`EncoderApp`]: the pixel-level encoder as a controllable
//! [`VideoApp`].
//!
//! Each macroblock runs the nine Fig. 2 actions in the controller's EDF
//! order. The app carries real codec state (reference frame,
//! reconstruction in progress, bitstream, rate control); `run_action`
//! performs the actual signal processing and reports its work converted
//! to cycles via [`crate::timing`].
//!
//! # Parallel structure
//!
//! The per-macroblock working state lives in one lock per macroblock
//! ([`MbState`]), and every action is split along the
//! [`fgqos_sim::runtime::ParallelApp`] contract:
//!
//! * [`ParallelApp::kernel`] — the pure signal processing, `&self` only:
//!   reads the frame-constant source/reference/QP, its own macroblock
//!   state, and (for intra prediction) the *reconstruction blocks* of the
//!   left/above macroblocks, which it declares as data dependencies;
//! * [`ParallelApp::apply`] — the sequential side effects: bit
//!   accounting after `Compress`, writing the reconstruction block into
//!   the shared frame after `Reconstruct`.
//!
//! This is the classic macroblock wavefront: with
//! [`fgqos_graph::iterate::IterationMode::Pipelined`] unrolling, the
//! runner's work-stealing executor overlaps macroblocks diagonally while
//! [`fgqos_sim::runner::Runner::run_parallel_on`] keeps the controller's
//! timeline and quality decisions byte-identical to the sequential run.
//!
//! Two runtime pairings (see [`fgqos_sim::runtime`]):
//!
//! * simulation — [`EncoderApp::work_backend`] on a
//!   [`fgqos_sim::runtime::VirtualClock`]: reported work *is* the
//!   execution time, clamped at the declared worst case, fully
//!   deterministic;
//! * live — [`fgqos_sim::runtime::MeasuredBackend`] on a
//!   [`fgqos_sim::runtime::WallClock`] calibrated with
//!   [`crate::timing::wall_rate`]: actions cost the real time they took
//!   (see `examples/live_encoder.rs`).

use std::sync::{Mutex, MutexGuard, PoisonError};

use fgqos_core::CycleReport;
use fgqos_graph::{ActionId, PrecedenceGraph};
use fgqos_sim::app::{fig2_body, fig2_profile, VideoApp};
use fgqos_sim::output::EncodedFrame;
use fgqos_sim::runtime::ParallelApp;
use fgqos_sim::scenario::LoadScenario;
use fgqos_sim::SimError;
use fgqos_time::{fig5, Cycles, Quality, QualityProfile};

use crate::dct;
use crate::entropy::{encode_block, encode_mv, BitWriter};
use crate::frame::{Frame, MB_SIZE};
use crate::intra::{dc_predict_blocks, decide_mode, MbMode};
use crate::motion::{predict, radius_for_quality, search};
use crate::psnr::psnr;
use crate::quant::{dequantize, nonzeros, quantize, RateController};
use crate::synth::SyntheticCamera;
use crate::timing;

/// Resolved ids of the Fig. 2 actions in the body graph.
#[derive(Debug, Clone, Copy)]
struct Fig2Ids {
    grab: ActionId,
    me: ActionId,
    dct: ActionId,
    quant: ActionId,
    intra: ActionId,
    compress: ActionId,
    invq: ActionId,
    idct: ActionId,
    recon: ActionId,
}

impl Fig2Ids {
    fn resolve(g: &PrecedenceGraph) -> Self {
        let find = |n: &str| g.find(n).expect("fig2 body has all paper actions");
        Fig2Ids {
            grab: find(fig5::names::GRAB),
            me: find(fig5::names::MOTION_ESTIMATE),
            dct: find(fig5::names::DCT),
            quant: find(fig5::names::QUANTIZE),
            intra: find(fig5::names::INTRA_PREDICT),
            compress: find(fig5::names::COMPRESS),
            invq: find(fig5::names::INVERSE_QUANTIZE),
            idct: find(fig5::names::IDCT),
            recon: find(fig5::names::RECONSTRUCT),
        }
    }
}

/// Per-macroblock working state threaded between actions. One instance
/// per macroblock, behind its own lock, so kernels of different
/// macroblocks run concurrently. Opaque outside this module; public only
/// as the [`ParallelApp::Snapshot`] type (the runner compares snapshots
/// around re-executions to cut mis-speculation cascades).
#[derive(Debug, Clone, PartialEq)]
pub struct MbState {
    target: [u8; 256],
    inter_pred: [u8; 256],
    inter_sad: u32,
    inter_mv: (i32, i32),
    prediction: [u8; 256],
    mode: MbMode,
    coeffs: [[f32; 64]; 4],
    levels: [[i16; 64]; 4],
    deq: [[f32; 64]; 4],
    /// Prediction residual produced by `DCT` (its input to the forward
    /// transform). `IDCT` writes its roundtripped residual to
    /// `recon_residual` instead: every field has exactly one writing
    /// action per frame, so a re-executed kernel can never clobber the
    /// speculated output of a *later* cache-committed one.
    residual: [i16; 256],
    /// Quantization-roundtripped residual produced by `IDCT`, read by
    /// `Reconstruct`.
    recon_residual: [i16; 256],
    nnz: u32,
    /// Reconstruction of this macroblock (written by `Reconstruct`, read
    /// by the right/below neighbours' intra prediction).
    recon_block: [u8; 256],
    /// This macroblock's bitstream (written by `Compress`).
    stream: Vec<u8>,
    /// Bits in `stream` (committed to the frame counters on apply).
    bits: u64,
}

impl Default for MbState {
    fn default() -> Self {
        MbState {
            target: [0; 256],
            inter_pred: [0; 256],
            inter_sad: u32::MAX,
            inter_mv: (0, 0),
            prediction: [128; 256],
            mode: MbMode::Intra,
            coeffs: [[0.0; 64]; 4],
            levels: [[0; 64]; 4],
            deq: [[0.0; 64]; 4],
            residual: [0; 256],
            recon_residual: [0; 256],
            nnz: 0,
            recon_block: [0; 256],
            stream: Vec::new(),
            bits: 0,
        }
    }
}

/// Pixel-level encoder application (see module docs).
#[derive(Debug)]
pub struct EncoderApp {
    camera: SyntheticCamera,
    scenario: LoadScenario,
    body: PrecedenceGraph,
    profile: QualityProfile,
    ids: Fig2Ids,
    rc: RateController,
    /// Reference frame for motion compensation (last completed recon).
    reference: Frame,
    /// Reconstruction of the frame being encoded.
    recon: Frame,
    /// Last *completed* reconstruction — what the display repeats when a
    /// frame is skipped.
    displayed: Frame,
    has_reference: bool,
    source: Frame,
    frame_idx: usize,
    force_intra: bool,
    qp: u8,
    frame_bits: u64,
    total_bits: u64,
    frames_encoded: usize,
    /// Per-macroblock working state, one lock per macroblock.
    mb_states: Vec<Mutex<MbState>>,
    /// Finished streams of the last completed frame.
    last_frame_streams: Vec<Vec<u8>>,
    /// QP the last completed frame was coded at.
    last_frame_qp: u8,
    /// Camera index of the last completed frame.
    last_frame_index: usize,
    /// Whether the last completed frame was coded intra-only.
    last_frame_keyframe: bool,
    /// Set when `encoded_psnr` finishes a frame, cleared when
    /// `encoded_output` takes it: guards against double publication and
    /// against publishing a stale frame after a skip.
    fresh_output: bool,
    /// Reference the last completed frame was predicted from.
    prev_reference: Frame,
}

impl EncoderApp {
    /// Builds an encoder over a synthetic camera of `width × height`
    /// pixels following `scenario`.
    ///
    /// The per-frame bit target is the paper's 1.1 Mbit/s at 25 frame/s,
    /// scaled by the pixel ratio to the D1 frames of the cycle-accurate
    /// experiments.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the dimensions are not positive
    /// multiples of 16.
    pub fn new(
        scenario: LoadScenario,
        width: usize,
        height: usize,
        seed: u64,
    ) -> Result<Self, SimError> {
        if width == 0
            || height == 0
            || !width.is_multiple_of(MB_SIZE)
            || !height.is_multiple_of(MB_SIZE)
        {
            return Err(SimError::InvalidConfig(
                "frame dimensions must be positive multiples of 16",
            ));
        }
        let camera = SyntheticCamera::new(&scenario, width, height, seed);
        let body = fig2_body();
        let profile = fig2_profile();
        let ids = Fig2Ids::resolve(&body);
        let d1_pixels = 704.0 * 576.0;
        let ratio = (width * height) as f64 / d1_pixels;
        let per_frame = ((fig5::TARGET_BITRATE_BITS_PER_S as f64 / 25.0) * ratio).max(512.0) as u64;
        let macroblocks = (width / MB_SIZE) * (height / MB_SIZE);
        Ok(EncoderApp {
            camera,
            scenario,
            body,
            profile,
            ids,
            rc: RateController::new(per_frame, 12),
            reference: Frame::new(width, height),
            recon: Frame::new(width, height),
            displayed: Frame::new(width, height),
            has_reference: false,
            source: Frame::new(width, height),
            frame_idx: 0,
            force_intra: true,
            qp: 12,
            frame_bits: 0,
            total_bits: 0,
            frames_encoded: 0,
            mb_states: (0..macroblocks)
                .map(|_| Mutex::new(MbState::default()))
                .collect(),
            last_frame_streams: Vec::new(),
            last_frame_qp: 12,
            last_frame_index: 0,
            last_frame_keyframe: false,
            fresh_output: false,
            prev_reference: Frame::new(width, height),
        })
    }

    /// The simulation backend matching this app: the work reported by
    /// `run_action` *is* the execution time in cycles (base 0, one cycle
    /// per unit), clamped at the declared worst case by the model.
    #[must_use]
    pub fn work_backend(
        seed: u64,
    ) -> fgqos_sim::runtime::ModelBackend<fgqos_sim::exec::WorkDriven> {
        fgqos_sim::runtime::ModelBackend::new(fgqos_sim::exec::WorkDriven::new(0, 1.0, seed))
    }

    /// Total bits produced so far (rate-control telemetry).
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.total_bits
    }

    /// Frames fully encoded so far.
    #[must_use]
    pub fn frames_encoded(&self) -> usize {
        self.frames_encoded
    }

    /// Current quantization parameter.
    #[must_use]
    pub fn qp(&self) -> u8 {
        self.qp
    }

    /// The most recent completed reconstruction (displayed frame).
    #[must_use]
    pub fn displayed(&self) -> &Frame {
        &self.displayed
    }

    /// Per-macroblock bitstreams of the last completed frame (raster
    /// order), decodable by [`crate::decoder::decode_frame`].
    #[must_use]
    pub fn last_frame_streams(&self) -> &[Vec<u8>] {
        &self.last_frame_streams
    }

    /// QP the last completed frame was coded at.
    #[must_use]
    pub fn last_frame_qp(&self) -> u8 {
        self.last_frame_qp
    }

    /// Reference frame used for motion compensation of the *next* frame
    /// (equals the last completed reconstruction).
    #[must_use]
    pub fn reference(&self) -> &Frame {
        &self.reference
    }

    /// The reference frame the *last completed* frame was predicted from
    /// (what a decoder needs to reproduce it).
    #[must_use]
    pub fn last_frame_reference(&self) -> &Frame {
        &self.prev_reference
    }

    fn mb_origin(&self, mb: usize) -> (usize, usize) {
        self.source.mb_origin(mb)
    }

    /// Locks one macroblock's working state. Locks never nest (neighbour
    /// reads copy their data out before the own-state lock is taken), so
    /// ordering is trivial; a poisoned lock only means a sibling kernel
    /// panicked mid-frame, and the state is still well-formed bytes.
    fn lock_mb(&self, mb: usize) -> MutexGuard<'_, MbState> {
        self.mb_states[mb]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Reconstruction blocks of the above/left neighbours of `mb`
    /// (`None` at frame borders). Data-dependency edges guarantee those
    /// macroblocks' `Reconstruct` kernels already ran.
    fn neighbour_recon(&self, mb: usize) -> (Option<[u8; 256]>, Option<[u8; 256]>) {
        let cols = self.source.mb_cols();
        let above = (mb >= cols).then(|| self.lock_mb(mb - cols).recon_block);
        let left = (!mb.is_multiple_of(cols)).then(|| self.lock_mb(mb - 1).recon_block);
        (above, left)
    }

    fn run_grab(&self, st: &mut MbState, mb: usize) -> u64 {
        let (ox, oy) = self.mb_origin(mb);
        // Reset in place but keep the stream's heap allocation from the
        // previous frame — a cleared `Vec` compares equal to a fresh
        // one, so snapshots (and speculation re-validation) see the
        // exact state the full reset produced.
        let mut stream = std::mem::take(&mut st.stream);
        stream.clear();
        *st = MbState {
            target: self.source.block(ox, oy),
            stream,
            ..MbState::default()
        };
        timing::grab_cycles()
    }

    fn run_motion(&self, st: &mut MbState, mb: usize, q: Quality) -> u64 {
        if self.force_intra || !self.has_reference {
            // I-frames skip the search: the trivial level-0 check.
            st.inter_sad = u32::MAX;
            st.inter_mv = (0, 0);
            return timing::motion_cycles(0, 1);
        }
        let (ox, oy) = self.mb_origin(mb);
        let radius = radius_for_quality(q.level());
        let result = search(&self.source, &self.reference, ox, oy, radius);
        st.inter_mv = result.mv;
        st.inter_sad = result.sad;
        st.inter_pred = predict(&self.reference, ox, oy, result.mv);
        timing::motion_cycles(q.level(), result.evaluations)
    }

    fn run_intra(
        &self,
        st: &mut MbState,
        above: Option<&[u8; 256]>,
        left: Option<&[u8; 256]>,
    ) -> u64 {
        let intra_pred = dc_predict_blocks(above, left);
        if self.force_intra || !self.has_reference || st.inter_sad == u32::MAX {
            st.mode = MbMode::Intra;
            st.prediction = intra_pred;
        } else {
            let (mode, _) = decide_mode(&st.target, &intra_pred, st.inter_sad);
            st.mode = mode;
            st.prediction = match mode {
                MbMode::Intra => intra_pred,
                MbMode::Inter => st.inter_pred,
            };
        }
        timing::intra_cycles()
    }

    fn run_dct(&self, st: &mut MbState) -> u64 {
        let mut residual = [0i16; 256];
        for (r, (&t, &p)) in residual
            .iter_mut()
            .zip(st.target.iter().zip(st.prediction.iter()))
        {
            *r = i16::from(t) - i16::from(p);
        }
        st.residual = residual;
        let blocks = dct::split_macroblock(&residual);
        for (b, block) in blocks.iter().enumerate() {
            st.coeffs[b] = dct::forward(block);
        }
        timing::dct_cycles()
    }

    fn run_quantize(&self, st: &mut MbState) -> u64 {
        let mut nnz = 0u32;
        for b in 0..4 {
            st.levels[b] = quantize(&st.coeffs[b], self.qp);
            nnz += nonzeros(&st.levels[b]);
        }
        st.nnz = nnz;
        timing::quantize_cycles(nnz)
    }

    fn run_compress(&self, st: &mut MbState) -> u64 {
        // Round-trip the macroblock's stream buffer through the writer
        // so steady-state compression allocates nothing.
        let mut w = BitWriter::from_vec(std::mem::take(&mut st.stream));
        // 1 mode bit + MV for inter blocks + 4 coefficient blocks.
        w.put_bit(matches!(st.mode, MbMode::Inter));
        if matches!(st.mode, MbMode::Inter) {
            encode_mv(&mut w, st.inter_mv);
        }
        for b in 0..4 {
            encode_block(&mut w, &st.levels[b]);
        }
        let bits = w.bit_len() as u64;
        st.bits = bits;
        st.stream = w.into_bytes();
        timing::compress_cycles(bits as u32)
    }

    fn run_inverse_quantize(&self, st: &mut MbState) -> u64 {
        for b in 0..4 {
            st.deq[b] = dequantize(&st.levels[b], self.qp);
        }
        timing::inverse_quantize_cycles(st.nnz)
    }

    fn run_idct(&self, st: &mut MbState) -> u64 {
        let mut blocks = [[0i16; 64]; 4];
        for (block, deq) in blocks.iter_mut().zip(st.deq.iter()) {
            *block = dct::inverse(deq);
        }
        st.recon_residual = dct::merge_macroblock(&blocks);
        timing::idct_cycles(st.nnz)
    }

    fn run_reconstruct(&self, st: &mut MbState) -> u64 {
        let mut block = [0u8; 256];
        for (out, (&p, &r)) in block
            .iter_mut()
            .zip(st.prediction.iter().zip(st.recon_residual.iter()))
        {
            let v = i32::from(p) + i32::from(r);
            *out = v.clamp(0, 255) as u8;
        }
        st.recon_block = block;
        timing::reconstruct_cycles(st.nnz)
    }
}

impl VideoApp for EncoderApp {
    fn body(&self) -> &PrecedenceGraph {
        &self.body
    }

    fn iterations(&self) -> usize {
        self.source.macroblocks()
    }

    fn profile(&self) -> &QualityProfile {
        &self.profile
    }

    fn activity(&self, frame: usize) -> f64 {
        self.scenario.frame(frame).activity
    }

    fn is_iframe(&self, frame: usize) -> bool {
        self.scenario.frame(frame).is_iframe
    }

    fn budget_cycles(&self, frame: usize) -> Option<fgqos_time::Cycles> {
        self.scenario.frame(frame).budget_cycles
    }

    fn begin_frame(&mut self, frame: usize) {
        self.frame_idx = frame;
        self.source = self.camera.frame(frame);
        self.force_intra = self.scenario.frame(frame).is_iframe || !self.has_reference;
        self.qp = self.rc.qp();
        self.frame_bits = 0;
    }

    fn run_action(&mut self, action: ActionId, mb: usize, q: Quality) -> Option<u64> {
        // The sequential path is the fused form of the parallel contract:
        // pure kernel, then side effects — one code path for both
        // runners, which is what makes them byte-identical.
        let work = self.kernel(action, mb, q);
        self.apply(action, mb);
        work
    }

    fn encoded_psnr(&mut self, frame: usize, _quality_index: f64, _report: &CycleReport) -> f64 {
        // The frame is complete: finalize codec state here (the runner
        // calls this exactly once per encoded frame). Real pixels: the
        // quality index is implicit in the motion search already done.
        debug_assert_eq!(frame, self.frame_idx);
        let db = psnr(&self.source, &self.recon);
        // Copy the finished streams into per-macroblock buffers that
        // persist across frames (outer and inner allocations reused).
        self.last_frame_streams
            .resize_with(self.mb_states.len(), Vec::new);
        for (out, m) in self.last_frame_streams.iter_mut().zip(&self.mb_states) {
            let st = m.lock().unwrap_or_else(PoisonError::into_inner);
            out.clear();
            out.extend_from_slice(&st.stream);
        }
        self.last_frame_qp = self.qp;
        self.last_frame_index = frame;
        self.last_frame_keyframe = self.force_intra;
        self.fresh_output = true;
        // Rotate the frame planes without reallocating: the old
        // reference becomes the previous reference, and the recon pixels
        // are copied over the (recycled) plane it displaced.
        std::mem::swap(&mut self.prev_reference, &mut self.reference);
        self.reference.data_mut().copy_from_slice(self.recon.data());
        self.displayed.data_mut().copy_from_slice(self.recon.data());
        self.has_reference = true;
        self.frames_encoded += 1;
        self.rc.end_frame(self.frame_bits);
        db
    }

    fn skipped_psnr(&mut self, frame: usize) -> f64 {
        let source = self.camera.frame(frame);
        psnr(&source, &self.displayed)
    }

    fn stream_len(&self) -> usize {
        self.scenario.frames()
    }
}

impl ParallelApp for EncoderApp {
    type Snapshot = MbState;

    fn snapshot(&self, mb: usize) -> MbState {
        self.lock_mb(mb).clone()
    }

    fn data_preds(&self, action: ActionId, mb: usize) -> Vec<(ActionId, usize)> {
        // The *exact* read set of every kernel, beyond the direct Fig. 2
        // edges: taint tracking relies on it. Declaring only the graph
        // edges would let a re-validated intermediary hide a changed
        // input from a downstream cached result — e.g. an intra mode
        // flip with unchanged prediction bytes re-validates DCT, yet
        // Compress reads the mode directly and must be invalidated.
        let ids = self.ids;
        if action == ids.intra {
            // Own target + inter SAD/prediction (ME and Intra_Predict
            // are incomparable in the body graph), plus the left/above
            // reconstructions — the macroblock wavefront.
            let cols = self.source.mb_cols();
            let mut deps = vec![(ids.grab, mb), (ids.me, mb)];
            if !mb.is_multiple_of(cols) {
                deps.push((ids.recon, mb - 1));
            }
            if mb >= cols {
                deps.push((ids.recon, mb - cols));
            }
            deps
        } else if action == ids.dct {
            // Reads the grabbed target directly (no grab → DCT edge).
            vec![(ids.grab, mb)]
        } else if action == ids.compress {
            // Reads the coding mode and motion vector directly.
            vec![(ids.me, mb), (ids.intra, mb)]
        } else if action == ids.recon {
            // Reads the prediction directly.
            vec![(ids.intra, mb)]
        } else {
            Vec::new()
        }
    }

    fn kernel_class(&self, action: ActionId, _mb: usize, q: Quality) -> u64 {
        // Only the P-frame motion search depends on the quality level,
        // and only through its search radius: speculation at a level with
        // the same radius still hits.
        if action == self.ids.me && !self.force_intra && self.has_reference {
            1 + radius_for_quality(q.level()) as u64
        } else {
            0
        }
    }

    fn kernel(&self, action: ActionId, mb: usize, q: Quality) -> Option<u64> {
        let cycles = if action == self.ids.intra {
            // Copy neighbour context before taking the own-state lock:
            // locks stay leaf-level, no ordering discipline needed.
            let (above, left) = self.neighbour_recon(mb);
            let mut st = self.lock_mb(mb);
            self.run_intra(&mut st, above.as_ref(), left.as_ref())
        } else {
            let mut st = self.lock_mb(mb);
            if action == self.ids.grab {
                self.run_grab(&mut st, mb)
            } else if action == self.ids.me {
                self.run_motion(&mut st, mb, q)
            } else if action == self.ids.dct {
                self.run_dct(&mut st)
            } else if action == self.ids.quant {
                self.run_quantize(&mut st)
            } else if action == self.ids.compress {
                self.run_compress(&mut st)
            } else if action == self.ids.invq {
                self.run_inverse_quantize(&mut st)
            } else if action == self.ids.idct {
                self.run_idct(&mut st)
            } else if action == self.ids.recon {
                self.run_reconstruct(&mut st)
            } else {
                unreachable!("unknown action handed to encoder app");
            }
        };
        Some(cycles)
    }

    fn apply(&mut self, action: ActionId, mb: usize) {
        if action == self.ids.compress {
            let bits = self.lock_mb(mb).bits;
            self.frame_bits += bits;
            self.total_bits += bits;
        } else if action == self.ids.recon {
            let block = self.lock_mb(mb).recon_block;
            let (ox, oy) = self.mb_origin(mb);
            self.recon.write_block(ox, oy, &block);
        }
    }

    fn encoded_output(&mut self, timestamp: Cycles, mean_quality: f64) -> Option<EncodedFrame> {
        if !self.fresh_output {
            return None;
        }
        self.fresh_output = false;
        // Move the finished buffers out instead of copying them — the
        // next frame's `encoded_psnr` re-grows the (now empty) outer
        // vector; the published frame owns its payload for the lifetime
        // of the ring.
        Some(EncodedFrame {
            frame: self.last_frame_index,
            timestamp,
            mean_quality,
            keyframe: self.last_frame_keyframe,
            qp: self.last_frame_qp,
            macroblock_streams: std::mem::take(&mut self.last_frame_streams),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_core::policy::MaxQuality;
    use fgqos_sim::exec::WorkDriven;
    use fgqos_sim::runner::{Mode, RunConfig, Runner};

    fn tiny_app(frames: usize) -> EncoderApp {
        let scenario = LoadScenario::paper_benchmark(3).truncated(frames);
        EncoderApp::new(scenario, 48, 32, 5).unwrap()
    }

    #[test]
    fn construction_validates_dimensions() {
        let scenario = LoadScenario::paper_benchmark(3).truncated(5);
        assert!(EncoderApp::new(scenario.clone(), 17, 32, 1).is_err());
        assert!(EncoderApp::new(scenario, 48, 32, 1).is_ok());
    }

    #[test]
    fn shape_matches_fig2() {
        let app = tiny_app(5);
        assert_eq!(app.body().len(), 9);
        assert_eq!(app.iterations(), 6); // 48x32 = 3x2 macroblocks
        assert_eq!(app.profile().n_actions(), 9);
        assert_eq!(app.stream_len(), 5);
    }

    /// End-to-end: the controlled pixel encoder over a short stream
    /// produces decodable quality (PSNR well above the skip level) and no
    /// skips. Runs through the explicit runtime seam (virtual clock +
    /// work backend) — the configuration every figure binary uses.
    #[test]
    fn controlled_pixel_run_is_safe_and_decent() {
        use fgqos_sim::runtime::VirtualClock;
        let scenario = LoadScenario::paper_benchmark(3).truncated(12);
        let app = EncoderApp::new(scenario, 48, 32, 5).unwrap();
        let n = app.iterations();
        let config = RunConfig::paper_defaults().scaled_to_macroblocks(n);
        let mut runner = Runner::new(app, config).unwrap();
        let mut policy = MaxQuality::new();
        let mut clock = VirtualClock::new();
        let mut backend = EncoderApp::work_backend(3);
        let res = runner
            .run_on(
                &mut clock,
                &mut backend,
                Mode::Controlled,
                &mut policy,
                None,
            )
            .unwrap();
        assert_eq!(res.skips(), 0, "{}", res.summary());
        assert_eq!(res.misses(), 0);
        // Encoded PSNR must be respectable for synthetic content.
        assert!(res.mean_psnr() > 26.0, "{}", res.summary());
        assert!(runner.app().frames_encoded() == 12);
        assert!(runner.app().total_bits() > 0);
    }

    /// Quality ordering at the codec level: encoding with a larger motion
    /// search budget must not lose PSNR on average (it can only find
    /// better predictions), and spends no more bits.
    #[test]
    fn higher_quality_improves_prediction() {
        use fgqos_core::policy::ConstantQuality;
        let mk = || {
            let scenario = LoadScenario::paper_benchmark(3).truncated(10);
            let app = EncoderApp::new(scenario, 48, 32, 5).unwrap();
            let n = app.iterations();
            // Generous period: constant quality runs without skips.
            let config = RunConfig::paper_defaults()
                .scaled_to_macroblocks(n)
                .with_period(fgqos_time::Cycles::mega(50));
            Runner::new(app, config).unwrap()
        };
        let mut lo_runner = mk();
        let mut exec = WorkDriven::new(0, 1.0, 3);
        let mut lo_policy = ConstantQuality::new(Quality::new(1));
        let lo = lo_runner
            .run(Mode::Constant, &mut lo_policy, &mut exec, None)
            .unwrap();
        let mut hi_runner = mk();
        let mut exec = WorkDriven::new(0, 1.0, 3);
        let mut hi_policy = ConstantQuality::new(Quality::new(7));
        let hi = hi_runner
            .run(Mode::Constant, &mut hi_policy, &mut exec, None)
            .unwrap();
        assert!(
            hi.mean_psnr() >= lo.mean_psnr() - 0.2,
            "q7 {} dB vs q1 {} dB",
            hi.mean_psnr(),
            lo.mean_psnr()
        );
        // More search ⇒ better prediction ⇒ no more residual bits.
        assert!(
            hi_runner.app().total_bits() <= lo_runner.app().total_bits() + 2_000,
            "q7 bits {} vs q1 bits {}",
            hi_runner.app().total_bits(),
            lo_runner.app().total_bits()
        );
    }

    #[test]
    fn skip_psnr_uses_displayed_frame() {
        let mut app = tiny_app(8);
        // Before anything is encoded, the displayed frame is black: PSNR
        // against real content is poor.
        let db = app.skipped_psnr(0);
        assert!(db < 20.0, "black repeat should be poor: {db}");
    }

    #[test]
    fn iframes_force_intra_mode() {
        let mut app = tiny_app(8);
        app.begin_frame(0); // scene start = I-frame
        assert!(app.force_intra);
        let work = app.run_action(app.ids.me, 0, Quality::new(7)).unwrap();
        // Trivial level-0 search cost, not a q7 search.
        assert!(work < 1_000, "I-frame ME cost {work}");
    }

    #[test]
    fn data_preds_form_the_macroblock_wavefront() {
        let app = tiny_app(4); // 3x2 macroblocks
        let ids = app.ids;
        // Top-left: only the same-iteration inputs.
        assert_eq!(
            app.data_preds(ids.intra, 0),
            vec![(ids.grab, 0), (ids.me, 0)]
        );
        // Interior bottom-middle (mb 4 = row 1, col 1): + left + above.
        assert_eq!(
            app.data_preds(ids.intra, 4),
            vec![(ids.grab, 4), (ids.me, 4), (ids.recon, 3), (ids.recon, 1)]
        );
        // Kernels whose reads bypass the body edges declare them.
        assert_eq!(
            app.data_preds(ids.compress, 4),
            vec![(ids.me, 4), (ids.intra, 4)]
        );
        assert_eq!(app.data_preds(ids.recon, 4), vec![(ids.intra, 4)]);
        assert_eq!(app.data_preds(ids.dct, 4), vec![(ids.grab, 4)]);
        // Pure-chain kernels need nothing extra.
        assert!(app.data_preds(ids.quant, 4).is_empty());
        assert!(app.data_preds(ids.idct, 4).is_empty());
    }

    #[test]
    fn kernel_class_tracks_the_search_radius_on_p_frames() {
        let mut app = tiny_app(8);
        app.begin_frame(0);
        // I-frame: the search is quality-blind.
        assert_eq!(app.kernel_class(app.ids.me, 0, Quality::new(0)), 0);
        assert_eq!(app.kernel_class(app.ids.me, 0, Quality::new(7)), 0);
        app.has_reference = true;
        app.force_intra = false;
        // P-frame: distinct radii, distinct classes; q0 radius is 0 but
        // the class is still distinct from the I-frame constant.
        let c0 = app.kernel_class(app.ids.me, 0, Quality::new(0));
        let c7 = app.kernel_class(app.ids.me, 0, Quality::new(7));
        assert_ne!(c0, 0);
        assert_ne!(c0, c7);
        // Non-ME kernels are quality-blind everywhere.
        assert_eq!(app.kernel_class(app.ids.dct, 0, Quality::new(7)), 0);
    }
}
