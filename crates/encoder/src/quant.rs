//! Quantization and rate control.

use crate::dct::BLOCK;

/// Quantization parameter bounds (MPEG-4-style).
pub const QP_MIN: u8 = 2;
/// Upper QP bound.
pub const QP_MAX: u8 = 40;

/// Uniform quantization of one 8×8 coefficient block with a flat step of
/// `2·qp` (DC uses `qp` to keep blocking artifacts down). Returns `i16`
/// levels.
///
/// The DC coefficient is peeled off so the 63-element AC tail is one
/// branch-free constant-step loop the compiler can vectorize; each
/// element's arithmetic is unchanged.
#[must_use]
pub fn quantize(coeffs: &[f32; BLOCK * BLOCK], qp: u8) -> [i16; BLOCK * BLOCK] {
    let mut out = [0i16; BLOCK * BLOCK];
    let ac_step = f32::from(qp) * 2.0;
    let dc_step = f32::from(qp);
    out[0] = (coeffs[0] / dc_step).round().clamp(-2048.0, 2048.0) as i16;
    for (o, &c) in out[1..].iter_mut().zip(&coeffs[1..]) {
        *o = (c / ac_step).round().clamp(-2048.0, 2048.0) as i16;
    }
    out
}

/// Inverse quantization back to coefficient space (DC peeled off like
/// [`quantize`]).
#[must_use]
pub fn dequantize(levels: &[i16; BLOCK * BLOCK], qp: u8) -> [f32; BLOCK * BLOCK] {
    let mut out = [0f32; BLOCK * BLOCK];
    let ac_step = f32::from(qp) * 2.0;
    let dc_step = f32::from(qp);
    out[0] = f32::from(levels[0]) * dc_step;
    for (o, &l) in out[1..].iter_mut().zip(&levels[1..]) {
        *o = f32::from(l) * ac_step;
    }
    out
}

/// Number of nonzero levels (work driver for Quantize/Inverse_Quantize
/// and a cheap texture statistic).
#[must_use]
pub fn nonzeros(levels: &[i16; BLOCK * BLOCK]) -> u32 {
    levels.iter().filter(|&&l| l != 0).count() as u32
}

/// Proportional rate controller steering the quantization parameter
/// toward a per-frame bit target (the paper encodes at a constant target
/// bitrate of 1.1 Mbit/s).
///
/// # Example
///
/// ```
/// use fgqos_encoder::quant::RateController;
///
/// let mut rc = RateController::new(44_000, 8);
/// let qp0 = rc.qp();
/// rc.end_frame(88_000); // spent double the target
/// assert!(rc.qp() > qp0); // quantize harder
/// ```
#[derive(Debug, Clone)]
pub struct RateController {
    target_bits_per_frame: u64,
    qp: f64,
}

impl RateController {
    /// Creates a controller with a per-frame bit target and initial QP.
    ///
    /// # Panics
    ///
    /// Panics if `target_bits_per_frame == 0` or `initial_qp` outside
    /// `[QP_MIN, QP_MAX]`.
    #[must_use]
    pub fn new(target_bits_per_frame: u64, initial_qp: u8) -> Self {
        assert!(target_bits_per_frame > 0, "bit target must be positive");
        assert!(
            (QP_MIN..=QP_MAX).contains(&initial_qp),
            "initial qp outside [{QP_MIN}, {QP_MAX}]"
        );
        RateController {
            target_bits_per_frame,
            qp: f64::from(initial_qp),
        }
    }

    /// The current quantization parameter.
    #[must_use]
    pub fn qp(&self) -> u8 {
        self.qp.round().clamp(f64::from(QP_MIN), f64::from(QP_MAX)) as u8
    }

    /// The per-frame bit target.
    #[must_use]
    pub fn target_bits(&self) -> u64 {
        self.target_bits_per_frame
    }

    /// Reports the bits spent on the frame just encoded and adapts QP
    /// proportionally (ratio > 1 ⇒ coarser quantization next frame).
    pub fn end_frame(&mut self, bits_used: u64) {
        let ratio = bits_used as f64 / self.target_bits_per_frame as f64;
        // Proportional control in the log domain, gain 0.5, clamped step.
        let step = (0.5 * ratio.max(1e-3).ln()).clamp(-0.75, 0.75);
        self.qp = (self.qp * step.exp()).clamp(f64::from(QP_MIN), f64::from(QP_MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dct;

    #[test]
    fn quantization_roundtrip_error_is_bounded_by_step() {
        let mut coeffs = [0f32; 64];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f32 - 32.0) * 7.3;
        }
        for qp in [2u8, 8, 24, 40] {
            let deq = dequantize(&quantize(&coeffs, qp), qp);
            for (i, (&a, &b)) in coeffs.iter().zip(deq.iter()).enumerate() {
                let step = if i == 0 {
                    f32::from(qp)
                } else {
                    f32::from(qp) * 2.0
                };
                assert!(
                    (a - b).abs() <= step / 2.0 + 0.01,
                    "qp={qp} i={i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn quantize_matches_the_elementwise_reference_bit_for_bit() {
        // The DC-peeled loops must reproduce the original per-element
        // branchy formulation exactly, including rounding and clamping.
        let mut seed = 0x0dd_ba11_u64;
        for _ in 0..32 {
            let mut coeffs = [0f32; 64];
            for c in coeffs.iter_mut() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *c = ((seed >> 33) % 10_000) as f32 / 2.0 - 2_500.0;
            }
            for qp in [QP_MIN, 7, 23, QP_MAX] {
                let ac_step = f32::from(qp) * 2.0;
                let dc_step = f32::from(qp);
                let q = quantize(&coeffs, qp);
                for (i, (&c, &l)) in coeffs.iter().zip(q.iter()).enumerate() {
                    let step = if i == 0 { dc_step } else { ac_step };
                    assert_eq!(l, (c / step).round().clamp(-2048.0, 2048.0) as i16);
                }
                let d = dequantize(&q, qp);
                for (i, (&l, &v)) in q.iter().zip(d.iter()).enumerate() {
                    let step = if i == 0 { dc_step } else { ac_step };
                    assert_eq!(v.to_bits(), (f32::from(l) * step).to_bits());
                }
            }
        }
    }

    #[test]
    fn coarser_qp_zeroes_more_coefficients() {
        let mut input = [0i16; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = (((i * 23) % 60) as i16) - 30;
        }
        let coeffs = dct::forward(&input);
        let fine = nonzeros(&quantize(&coeffs, 2));
        let coarse = nonzeros(&quantize(&coeffs, 32));
        assert!(coarse < fine, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn rate_controller_converges_both_directions() {
        let mut rc = RateController::new(10_000, 10);
        for _ in 0..10 {
            rc.end_frame(30_000);
        }
        assert!(rc.qp() >= 30, "overspending must raise qp: {}", rc.qp());
        for _ in 0..20 {
            rc.end_frame(1_000);
        }
        assert!(rc.qp() <= 10, "underspending must lower qp: {}", rc.qp());
        assert_eq!(rc.target_bits(), 10_000);
    }

    #[test]
    fn rate_controller_clamps_qp() {
        let mut rc = RateController::new(100, QP_MIN);
        for _ in 0..50 {
            rc.end_frame(1); // massive underspend
        }
        assert_eq!(rc.qp(), QP_MIN);
        for _ in 0..50 {
            rc.end_frame(1_000_000);
        }
        assert_eq!(rc.qp(), QP_MAX);
    }

    #[test]
    fn constructor_validates() {
        assert!(std::panic::catch_unwind(|| RateController::new(0, 10)).is_err());
        assert!(std::panic::catch_unwind(|| RateController::new(10, 1)).is_err());
        assert!(std::panic::catch_unwind(|| RateController::new(10, 41)).is_err());
    }
}
