//! Peak signal-to-noise ratio between frames.

use crate::frame::Frame;

/// PSNR in dB between two equal-sized frames
/// (`10·log10(255² / MSE)`); identical frames report 99 dB (capped in
/// place of infinity).
///
/// # Panics
///
/// Panics if the frames have different dimensions.
///
/// # Example
///
/// ```
/// use fgqos_encoder::{frame::Frame, psnr::psnr};
///
/// let a = Frame::new(16, 16);
/// let mut b = Frame::new(16, 16);
/// assert_eq!(psnr(&a, &b), 99.0);
/// b.set(0, 0, 255);
/// assert!(psnr(&a, &b) < 99.0);
/// ```
#[must_use]
pub fn psnr(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.width(), b.width(), "frame widths differ");
    assert_eq!(a.height(), b.height(), "frame heights differ");
    let sse: u64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = i64::from(x) - i64::from(y);
            (d * d) as u64
        })
        .sum();
    if sse == 0 {
        return 99.0;
    }
    let mse = sse as f64 / a.data().len() as f64;
    (10.0 * (255.0f64 * 255.0 / mse).log10()).min(99.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_cap_at_99() {
        let f = Frame::new(16, 16);
        assert_eq!(psnr(&f, &f), 99.0);
    }

    #[test]
    fn uniform_error_matches_closed_form() {
        let a = Frame::new(16, 16);
        let mut b = Frame::new(16, 16);
        for p in b.data_mut() {
            *p = 10; // MSE = 100
        }
        let expected = 10.0 * (255.0f64 * 255.0 / 100.0).log10();
        assert!((psnr(&a, &b) - expected).abs() < 1e-9);
    }

    #[test]
    fn more_noise_means_lower_psnr() {
        let a = Frame::new(16, 16);
        let mut small = Frame::new(16, 16);
        let mut big = Frame::new(16, 16);
        for p in small.data_mut() {
            *p = 3;
        }
        for p in big.data_mut() {
            *p = 30;
        }
        assert!(psnr(&a, &small) > psnr(&a, &big));
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn size_mismatch_panics() {
        let _ = psnr(&Frame::new(16, 16), &Frame::new(32, 16));
    }
}
