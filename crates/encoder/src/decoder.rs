//! The matching decoder.
//!
//! A hybrid encoder is only correct if an independent decoder, given just
//! the bitstream and the previous reference frame, reproduces *exactly*
//! the encoder's reconstruction — otherwise encoder and decoder drift
//! apart frame after frame. This module implements that decoder; the
//! roundtrip tests in `tests/codec_roundtrip.rs` assert bit-exact
//! agreement.
//!
//! Per-macroblock stream layout (written by the `Compress` action):
//! one mode bit (1 = inter), the motion vector for inter blocks
//! (signed Exp-Golomb per component), then the four 8×8 coefficient
//! blocks as zigzag run-length pairs.

use crate::dct::{self, BLOCK};
use crate::entropy::{decode_block, decode_mv, BitReader};
use crate::frame::{Frame, MB_SIZE};
use crate::intra::dc_predict;
use crate::motion::predict;
use crate::quant::dequantize;

/// Decode error: the stream ended early or was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Macroblock at which decoding failed.
    pub macroblock: usize,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bitstream truncated or malformed at macroblock {}",
            self.macroblock
        )
    }
}

impl std::error::Error for DecodeError {}

/// Decodes one macroblock from `reader` into `recon` at origin
/// `(ox, oy)`, predicting from `reference` (inter) or from the already
/// decoded part of `recon` (intra).
///
/// # Errors
///
/// [`DecodeError`]-shaped `None` mapped by the caller; this helper
/// returns `None` on truncation.
fn decode_macroblock(
    reader: &mut BitReader<'_>,
    reference: &Frame,
    recon: &mut Frame,
    ox: usize,
    oy: usize,
    qp: u8,
) -> Option<()> {
    let is_inter = reader.bit()?;
    let prediction: [u8; MB_SIZE * MB_SIZE] = if is_inter {
        let mv = decode_mv(reader)?;
        predict(reference, ox, oy, mv)
    } else {
        dc_predict(recon, ox, oy)
    };
    let mut blocks = [[0i16; BLOCK * BLOCK]; 4];
    for b in &mut blocks {
        let levels = decode_block(reader)?;
        *b = dct::inverse(&dequantize(&levels, qp));
    }
    let residual = dct::merge_macroblock(&blocks);
    let mut out = [0u8; MB_SIZE * MB_SIZE];
    for i in 0..MB_SIZE * MB_SIZE {
        let v = i32::from(prediction[i]) + i32::from(residual[i]);
        out[i] = v.clamp(0, 255) as u8;
    }
    recon.write_block(ox, oy, &out);
    Some(())
}

/// Decodes a whole frame from per-macroblock substreams (raster order),
/// given the previous reference frame and the frame's quantization
/// parameter.
///
/// # Errors
///
/// [`DecodeError`] with the offending macroblock on truncated or
/// malformed input.
pub fn decode_frame(
    mb_streams: &[Vec<u8>],
    reference: &Frame,
    width: usize,
    height: usize,
    qp: u8,
) -> Result<Frame, DecodeError> {
    let mut recon = Frame::new(width, height);
    let expected = recon.macroblocks();
    for mb in 0..expected {
        let stream = mb_streams.get(mb).ok_or(DecodeError { macroblock: mb })?;
        let mut reader = BitReader::new(stream);
        let (ox, oy) = recon.mb_origin(mb);
        decode_macroblock(&mut reader, reference, &mut recon, ox, oy, qp)
            .ok_or(DecodeError { macroblock: mb })?;
    }
    Ok(recon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::{encode_block, encode_mv, BitWriter};
    use crate::quant::quantize;

    /// Hand-encode one intra macroblock and decode it back.
    #[test]
    fn single_intra_macroblock_roundtrip() {
        let reference = Frame::new(16, 16);
        let mut w = BitWriter::new();
        w.put_bit(false); // intra

        // Residual: all 32 against the DC prediction of 128.
        let mut res = [32i16; 256];
        // Make it less trivial.
        res[0] = 40;
        let blocks = dct::split_macroblock(&res);
        let qp = 4;
        let mut levels_sum = 0u32;
        for b in &blocks {
            let lv = quantize(&dct::forward(b), qp);
            levels_sum += crate::quant::nonzeros(&lv);
            encode_block(&mut w, &lv);
        }
        assert!(levels_sum > 0);
        let streams = vec![w.into_bytes()];
        let decoded = decode_frame(&streams, &reference, 16, 16, qp).unwrap();
        // The decoded pixels must equal prediction (128) + dequantized
        // residual; with qp=4 the error per pixel is bounded by ~qp.
        for &p in decoded.data() {
            assert!(
                (i32::from(p) - 160).abs() <= 12,
                "pixel {p} too far from 160"
            );
        }
    }

    #[test]
    fn truncated_stream_reports_macroblock() {
        let reference = Frame::new(32, 16);
        let streams = vec![vec![0u8; 1]]; // way too short, and only 1 of 2
        let err = decode_frame(&streams, &reference, 32, 16, 8).unwrap_err();
        assert_eq!(err.macroblock, 0);
        let mut w = BitWriter::new();
        w.put_bit(false);
        for _ in 0..4 {
            encode_block(&mut w, &[0i16; 64]);
        }
        let err = decode_frame(&[w.into_bytes()], &reference, 32, 16, 8).unwrap_err();
        assert_eq!(err.macroblock, 1, "second macroblock missing");
        assert!(err.to_string().contains("macroblock 1"));
    }

    #[test]
    fn inter_macroblock_uses_motion_vector() {
        // Reference has a bright square; encode an inter MB with mv (4,2)
        // and zero residual: decoded block must equal the shifted block.
        let mut reference = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                reference.set(x, y, ((x * 7 + y * 3) % 251) as u8);
            }
        }
        let mut w = BitWriter::new();
        w.put_bit(true); // inter
        encode_mv(&mut w, (4, 2));
        for _ in 0..4 {
            encode_block(&mut w, &[0i16; 64]);
        }
        // Frame of one MB: 16x16.
        let decoded = decode_frame(&[w.into_bytes()], &reference, 16, 16, 8).unwrap();
        let expected = reference.block_clamped(4, 2);
        assert_eq!(decoded.block(0, 0), expected);
    }
}
