//! The synthetic camera: deterministic scene rendering driven by the
//! simulator's load scenario.
//!
//! Substitution (see DESIGN.md): the paper's 582-frame camera benchmark is
//! proprietary footage; what the figures depend on is its *statistics* —
//! per-scene motion and texture, scene cuts, noise. Each scene renders a
//! textured background (sum of sinusoidal gratings) plus moving rigid
//! rectangles; velocity scales with the scene's motion parameter and
//! texture with its texture parameter. Rendering frame `f` is a pure
//! function of `(seed, f)`, so the camera needs no storage.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fgqos_sim::scenario::LoadScenario;

use crate::frame::Frame;

/// A moving rectangle in a scene.
#[derive(Debug, Clone, Copy)]
struct MovingObject {
    x0: f64,
    y0: f64,
    vx: f64,
    vy: f64,
    w: usize,
    h: usize,
    brightness: u8,
}

/// Per-scene rendering parameters (derived deterministically from the
/// scenario seed and scene index).
#[derive(Debug, Clone)]
struct SceneRender {
    grating_freq: (f64, f64),
    grating_amp: f64,
    phase: f64,
    base_luma: u8,
    objects: Vec<MovingObject>,
    noise_amp: f64,
}

/// Deterministic synthetic video source.
///
/// # Example
///
/// ```
/// use fgqos_encoder::synth::SyntheticCamera;
/// use fgqos_sim::scenario::LoadScenario;
///
/// let scenario = LoadScenario::paper_benchmark(3).truncated(10);
/// let cam = SyntheticCamera::new(&scenario, 48, 32, 7);
/// let f0 = cam.frame(0);
/// let f0_again = cam.frame(0);
/// assert_eq!(f0, f0_again); // pure function of the frame index
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCamera {
    width: usize,
    height: usize,
    seed: u64,
    scenes: Vec<SceneRender>,
    /// `(scene, index_in_scene)` per global frame.
    frame_map: Vec<(usize, usize)>,
}

impl SyntheticCamera {
    /// Builds a camera for a scenario at the given frame dimensions.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are not positive multiples of 16 (checked by
    /// [`Frame::new`]).
    #[must_use]
    pub fn new(scenario: &LoadScenario, width: usize, height: usize, seed: u64) -> Self {
        // Validate dimensions early.
        let _probe = Frame::new(width, height);
        let mut scenes = Vec::with_capacity(scenario.scene_count());
        for (idx, profile) in scenario.scenes().iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9E37_79B9));
            let n_objects = 2 + (profile.motion * 3.0) as usize;
            let max_speed = 1.0 + profile.motion * 7.0; // px/frame
            let objects = (0..n_objects)
                .map(|_| MovingObject {
                    x0: rng.gen_range(0.0..width as f64),
                    y0: rng.gen_range(0.0..height as f64),
                    vx: rng.gen_range(-max_speed..max_speed),
                    vy: rng.gen_range(-max_speed / 2.0..max_speed / 2.0),
                    w: rng.gen_range(8..(width / 2).max(9)),
                    h: rng.gen_range(8..(height / 2).max(9)),
                    brightness: rng.gen_range(40..220),
                })
                .collect();
            scenes.push(SceneRender {
                grating_freq: (
                    0.03 + profile.texture * rng.gen_range(0.05..0.25),
                    0.02 + profile.texture * rng.gen_range(0.05..0.2),
                ),
                grating_amp: 12.0 + profile.texture * 40.0,
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
                base_luma: rng.gen_range(90..150),
                objects,
                noise_amp: 1.0 + profile.texture * 3.0,
            });
        }
        let frame_map = scenario
            .iter()
            .map(|info| (info.scene, info.index_in_scene))
            .collect();
        SyntheticCamera {
            width,
            height,
            seed,
            scenes,
            frame_map,
        }
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of frames the camera produces.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frame_map.len()
    }

    /// Whether the stream is empty (never true for valid scenarios).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frame_map.is_empty()
    }

    /// Renders frame `f` (pure function; no state).
    ///
    /// # Panics
    ///
    /// Panics if `f >= len()`.
    #[must_use]
    pub fn frame(&self, f: usize) -> Frame {
        let (scene_idx, k) = self.frame_map[f];
        let scene = &self.scenes[scene_idx];
        let t = k as f64;
        let mut out = Frame::new(self.width, self.height);
        // Background: drifting sinusoidal grating.
        let (fx, fy) = scene.grating_freq;
        let drift = t * 0.35;
        for y in 0..self.height {
            for x in 0..self.width {
                let v = f64::from(scene.base_luma)
                    + scene.grating_amp
                        * ((x as f64 * fx + drift + scene.phase).sin()
                            + (y as f64 * fy - drift * 0.6).cos())
                        / 2.0;
                out.set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        // Moving objects (wrap around the frame).
        for o in &scene.objects {
            let cx = (o.x0 + o.vx * t).rem_euclid(self.width as f64) as usize;
            let cy = (o.y0 + o.vy * t).rem_euclid(self.height as f64) as usize;
            for dy in 0..o.h {
                for dx in 0..o.w {
                    let x = (cx + dx) % self.width;
                    let y = (cy + dy) % self.height;
                    // Slight internal gradient so objects carry texture.
                    let v = i32::from(o.brightness) + ((dx + dy) % 16) as i32 - 8;
                    out.set(x, y, v.clamp(0, 255) as u8);
                }
            }
        }
        // Sensor noise: deterministic per (seed, frame).
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (f as u64).wrapping_mul(0xD134_2543_DE82_EF95));
        let amp = scene.noise_amp;
        for p in out.data_mut() {
            let n = rng.gen_range(-amp..=amp);
            *p = (f64::from(*p) + n).clamp(0.0, 255.0) as u8;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::sad;

    fn camera(frames: usize) -> SyntheticCamera {
        let scenario = LoadScenario::paper_benchmark(3).truncated(frames);
        SyntheticCamera::new(&scenario, 48, 32, 11)
    }

    #[test]
    fn frames_are_deterministic() {
        let cam = camera(10);
        assert_eq!(cam.frame(4), cam.frame(4));
        assert_eq!(cam.len(), 10);
        assert!(!cam.is_empty());
    }

    #[test]
    fn consecutive_frames_are_similar_within_a_scene() {
        let cam = camera(30);
        // Frames 5 and 6 are in scene 0 (58 frames long).
        let a = cam.frame(5);
        let b = cam.frame(6);
        let d: u64 = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(&x, &y)| u64::from(x.abs_diff(y)))
            .sum();
        let per_pixel = d as f64 / a.data().len() as f64;
        assert!(per_pixel < 40.0, "temporal difference too big: {per_pixel}");
        assert!(per_pixel > 0.1, "frames must not be identical");
    }

    #[test]
    fn scene_cuts_change_content_sharply() {
        let scenario = LoadScenario::paper_benchmark(3).truncated(70);
        let cam = SyntheticCamera::new(&scenario, 48, 32, 11);
        // Scene 0 has 58 frames: 57 -> 58 crosses the cut.
        let within: u64 = {
            let a = cam.frame(56);
            let b = cam.frame(57);
            a.data()
                .iter()
                .zip(b.data())
                .map(|(&x, &y)| u64::from(x.abs_diff(y)))
                .sum()
        };
        let across: u64 = {
            let a = cam.frame(57);
            let b = cam.frame(58);
            a.data()
                .iter()
                .zip(b.data())
                .map(|(&x, &y)| u64::from(x.abs_diff(y)))
                .sum()
        };
        assert!(
            across > within * 2,
            "cut must be sharper: within {within}, across {across}"
        );
    }

    #[test]
    fn motion_is_trackable_by_block_search() {
        let cam = camera(20);
        let a = cam.frame(10);
        let b = cam.frame(11);
        // Some macroblock should match better with a nonzero motion vector
        // than with the zero vector (i.e. motion estimation has something
        // to find).
        let mut any_gain = false;
        for mb in 0..a.macroblocks() {
            let (ox, oy) = a.mb_origin(mb);
            let target = b.block(ox, oy);
            let zero = sad(&target, &a.block(ox, oy));
            let best = crate::motion::search(&b, &a, ox, oy, 8);
            if best.sad + 256 < zero {
                any_gain = true;
                break;
            }
        }
        assert!(any_gain, "no macroblock benefited from motion search");
    }
}
