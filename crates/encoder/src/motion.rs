//! Quality-parameterized motion estimation.
//!
//! This is the action whose execution time the QoS controller modulates:
//! the quality level maps to the full-search radius (Fig. 5 gives 8
//! levels). Bigger radius ⇒ better prediction (fewer residual bits at the
//! same quantizer ⇒ higher PSNR at the target bitrate) and more SAD
//! evaluations ⇒ more cycles. Early termination on a good match makes the
//! cost *content-dependent*, which is exactly the load fluctuation the
//! controller exists to absorb.
//!
//! # Hot path
//!
//! [`search`] is the encoder's dominant kernel at high quality (up to
//! 33×33 = 1089 candidates per macroblock at radius 16). It allocates
//! nothing: ring offsets are enumerated inline rather than collected
//! into a `Vec`, and each candidate is scored with
//! [`Frame::sad_block_clamped_bounded`], which reads interior rows
//! straight from the reference plane and bails out of a candidate as
//! soon as its running sum exceeds the current best. The bail is
//! conservative — a candidate is abandoned only once it *strictly*
//! exceeds the best SAD — so the winning vector, its SAD, the
//! first-found tie-break, and the `evaluations` count are byte-identical
//! to an exhaustive scorer.

use crate::frame::{Frame, MB_SIZE};

/// Search radius (pixels) per quality level 0–7. Level 0 checks only the
/// zero vector (the paper's level-0 `Motion_Estimate` averages a mere 215
/// cycles — a trivial check).
pub const RADIUS_BY_QUALITY: [i32; 8] = [0, 1, 2, 4, 6, 8, 12, 16];

/// Early-termination threshold: a SAD below this (per 256-pixel block)
/// counts as "good enough" and stops the search.
pub const EARLY_EXIT_SAD: u32 = 512;

/// Result of one motion search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionResult {
    /// Best motion vector (dx, dy) in pixels.
    pub mv: (i32, i32),
    /// SAD of the best match.
    pub sad: u32,
    /// Number of candidate positions evaluated (the work count).
    pub evaluations: u32,
}

/// Search radius for a quality level (clamps levels above 7).
#[must_use]
pub fn radius_for_quality(q: u8) -> i32 {
    RADIUS_BY_QUALITY[usize::from(q).min(RADIUS_BY_QUALITY.len() - 1)]
}

/// Full-search motion estimation of the macroblock at `(ox, oy)` of
/// `current` against `reference`, within `radius` pixels, spiralling
/// outward from the zero vector with early termination.
///
/// The spiral order matters: natural video has mostly small motion, so
/// checking near-zero candidates first makes early termination effective
/// and cost content-dependent.
#[must_use]
pub fn search(
    current: &Frame,
    reference: &Frame,
    ox: usize,
    oy: usize,
    radius: i32,
) -> MotionResult {
    let target = current.block(ox, oy);
    let mut best = MotionResult {
        mv: (0, 0),
        sad: u32::MAX,
        evaluations: 0,
    };
    // Scores one candidate offset, yielding `true` when the search can
    // terminate early. Bounding the SAD by `best.sad` keeps the
    // acceptance test exact: a true SAD `<= best.sad` is always summed
    // in full (the bail fires only strictly above the bound), so both
    // improvements and first-found ties behave as if every candidate
    // were scored exhaustively.
    macro_rules! cand {
        ($dx:expr, $dy:expr) => {{
            let (dx, dy) = ($dx, $dy);
            let s = reference.sad_block_clamped_bounded(
                &target,
                ox as i32 + dx,
                oy as i32 + dy,
                best.sad,
            );
            best.evaluations += 1;
            if s < best.sad || (s == best.sad && (dx, dy) < best.mv) {
                best.sad = s;
                best.mv = (dx, dy);
            }
            best.sad <= EARLY_EXIT_SAD
        }};
    }
    // Ring 0 (zero vector) outward, in the exact order `ring` yields.
    'rings: for r in 0..=radius {
        if r == 0 {
            if cand!(0, 0) {
                break 'rings;
            }
            continue;
        }
        for d in -r..=r {
            if cand!(d, -r) || cand!(d, r) {
                break 'rings;
            }
        }
        for d in (-r + 1)..r {
            if cand!(-r, d) || cand!(r, d) {
                break 'rings;
            }
        }
    }
    best
}

/// Candidate offsets on the square ring of Chebyshev radius `r` — the
/// test oracle for the inline enumeration in [`search`].
#[cfg(test)]
fn ring(r: i32) -> Vec<(i32, i32)> {
    if r == 0 {
        return vec![(0, 0)];
    }
    let mut out = Vec::with_capacity((8 * r) as usize);
    for d in -r..=r {
        out.push((d, -r));
        out.push((d, r));
    }
    for d in (-r + 1)..r {
        out.push((-r, d));
        out.push((r, d));
    }
    out
}

/// Motion-compensated 16×16 prediction for a vector.
#[must_use]
pub fn predict(reference: &Frame, ox: usize, oy: usize, mv: (i32, i32)) -> [u8; MB_SIZE * MB_SIZE] {
    reference.block_clamped(ox as i32 + mv.0, oy as i32 + mv.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frame with a bright 16x16 square at (x, y) on a mid-gray field.
    fn frame_with_square(x: usize, y: usize) -> Frame {
        let mut f = Frame::new(64, 64);
        for p in f.data_mut() {
            *p = 100;
        }
        for dy in 0..16 {
            for dx in 0..16 {
                f.set(x + dx, y + dy, 220);
            }
        }
        f
    }

    #[test]
    fn finds_exact_translation_within_radius() {
        let reference = frame_with_square(16, 16);
        let current = frame_with_square(20, 18); // moved by (+4, +2)

        // MB at (16,16) in current contains part of the square; its true
        // match in the reference is at offset (-4, -2)... search from the
        // current square MB (20 rounds to MB at 16): use MB origin 16,16.
        let r = search(&current, &reference, 16, 16, 8);
        assert_eq!(r.mv, (-4, -2));
        assert_eq!(r.sad, 0);
        assert!(r.evaluations > 1);
    }

    #[test]
    fn zero_radius_checks_only_zero_vector() {
        let reference = frame_with_square(16, 16);
        let current = frame_with_square(24, 16);
        let r = search(&current, &reference, 16, 16, 0);
        assert_eq!(r.evaluations, 1);
        assert_eq!(r.mv, (0, 0));
        assert!(r.sad > 0);
    }

    #[test]
    fn early_exit_on_static_content() {
        let reference = frame_with_square(16, 16);
        let current = reference.clone();
        let r = search(&current, &reference, 16, 16, 16);
        // Zero vector matches perfectly: one evaluation, done.
        assert_eq!(r.evaluations, 1);
        assert_eq!(r.sad, 0);
        assert_eq!(r.mv, (0, 0));
    }

    #[test]
    fn larger_radius_never_worse() {
        let reference = frame_with_square(16, 16);
        let current = frame_with_square(28, 24); // (+12, +8)
        let small = search(&current, &reference, 16, 16, 2);
        let large = search(&current, &reference, 16, 16, 16);
        assert!(large.sad <= small.sad);
        assert!(large.evaluations >= small.evaluations);
    }

    #[test]
    fn ring_sizes_are_correct() {
        assert_eq!(ring(0).len(), 1);
        assert_eq!(ring(1).len(), 8);
        assert_eq!(ring(3).len(), 24);
        // Full search over radius r must cover (2r+1)^2 candidates.
        let total: usize = (0..=4).map(|r| ring(r).len()).sum();
        assert_eq!(total, 81);
        // No duplicates.
        let mut all: Vec<(i32, i32)> = (0..=4).flat_map(ring).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 81);
    }

    /// The pre-optimization search, verbatim: `Vec`-collected rings and
    /// an exhaustive (unbounded) SAD per candidate.
    fn search_reference(
        current: &Frame,
        reference: &Frame,
        ox: usize,
        oy: usize,
        radius: i32,
    ) -> MotionResult {
        use crate::frame::sad;
        let target = current.block(ox, oy);
        let mut best = MotionResult {
            mv: (0, 0),
            sad: u32::MAX,
            evaluations: 0,
        };
        'rings: for r in 0..=radius {
            for (dx, dy) in ring(r) {
                let cand = reference.block_clamped(ox as i32 + dx, oy as i32 + dy);
                let s = sad(&target, &cand);
                best.evaluations += 1;
                if s < best.sad || (s == best.sad && (dx, dy) < best.mv) {
                    best.sad = s;
                    best.mv = (dx, dy);
                }
                if best.sad <= EARLY_EXIT_SAD {
                    break 'rings;
                }
            }
        }
        best
    }

    #[test]
    fn bounded_search_matches_the_exhaustive_reference_exactly() {
        // Noise frames defeat the early-exit threshold, so the bounded
        // SAD's bail logic (not just EARLY_EXIT_SAD) decides the work
        // done; the result — vector, SAD, and evaluation count — must
        // still be byte-identical, including at border macroblocks where
        // candidates clamp.
        let mut seed = 0xbee5_u64;
        let mut noise = |f: &mut Frame| {
            for p in f.data_mut() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *p = (seed >> 33) as u8;
            }
        };
        let mut current = Frame::new(64, 48);
        let mut reference = Frame::new(64, 48);
        noise(&mut current);
        noise(&mut reference);
        for radius in [0, 1, 2, 4, 8, 16] {
            for (ox, oy) in [(0, 0), (16, 16), (48, 32), (0, 32), (48, 0)] {
                let fast = search(&current, &reference, ox, oy, radius);
                let slow = search_reference(&current, &reference, ox, oy, radius);
                assert_eq!(fast, slow, "radius {radius} at ({ox}, {oy})");
            }
        }
        // And on correlated content where early exit does fire.
        let reference = frame_with_square(16, 16);
        let current = frame_with_square(21, 19);
        for radius in [2, 8, 16] {
            assert_eq!(
                search(&current, &reference, 16, 16, radius),
                search_reference(&current, &reference, 16, 16, radius),
            );
        }
    }

    #[test]
    fn radius_mapping_is_monotone() {
        for w in RADIUS_BY_QUALITY.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(radius_for_quality(0), 0);
        assert_eq!(radius_for_quality(7), 16);
        assert_eq!(radius_for_quality(200), 16); // clamped
    }

    #[test]
    fn prediction_samples_reference() {
        let reference = frame_with_square(16, 16);
        let p = predict(&reference, 16, 16, (0, 0));
        assert_eq!(p, reference.block(16, 16));
        let shifted = predict(&reference, 16, 16, (4, 2));
        assert_eq!(shifted, reference.block_clamped(20, 18));
    }
}
