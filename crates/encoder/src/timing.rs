//! Calibration of per-action work counts onto the Fig. 5 cycle tables.
//!
//! The pixel encoder reports *raw work* (SAD evaluations, nonzero
//! coefficients, coded bits); this module converts it to cycles so that,
//! at nominal content, each action's **average lands on its Fig. 5
//! average**, while content variation moves individual instances between
//! the floor and the declared worst case (the execution-time model clamps
//! at `Cwc`, preserving the safety precondition).
//!
//! Calibration constants assume the representative workloads documented
//! on each function; `EXPERIMENTS.md` records the measured averages.

use std::time::Duration;

use fgqos_time::fig5;

use crate::motion::{radius_for_quality, RADIUS_BY_QUALITY};

/// Fraction of the full search window a typical (early-terminating)
/// search visits. Motion cycles are normalized so that visiting this
/// fraction costs exactly the Fig. 5 average.
pub const TYPICAL_SEARCH_FRACTION: f64 = 0.7;

/// `Grab_Macro_Block`: fixed copy cost (Fig. 5: avg 12 000).
#[must_use]
pub fn grab_cycles() -> u64 {
    12_000
}

/// Number of candidate evaluations a "typical" search at level `q`
/// visits (the calibration anchor: this many evaluations cost exactly
/// the Fig. 5 average).
#[must_use]
pub fn typical_evaluations(q: u8) -> u32 {
    let r = radius_for_quality(q);
    let window = (2 * r + 1) * (2 * r + 1);
    ((f64::from(window) * TYPICAL_SEARCH_FRACTION).round() as u32).max(1)
}

/// `Motion_Estimate`: proportional to visited candidates, normalized per
/// quality level so a typical search costs the Fig. 5 average for that
/// level.
#[must_use]
pub fn motion_cycles(q: u8, evaluations: u32) -> u64 {
    let qi = usize::from(q).min(RADIUS_BY_QUALITY.len() - 1);
    let (avg, _) = fig5::MOTION_ESTIMATE_TIMES[qi];
    let typical = typical_evaluations(q);
    ((avg as f64) * f64::from(evaluations) / f64::from(typical)).round() as u64
}

/// `Discrete_Cosine_Transform`: fixed (Fig. 5 declares avg = wc =
/// 16 000 — the transform is data-independent).
#[must_use]
pub fn dct_cycles() -> u64 {
    16_000
}

/// `Quantize`: affine in the number of nonzero levels of the macroblock
/// (typical ≈ 83 nonzeros ⇒ 6 000 cycles).
#[must_use]
pub fn quantize_cycles(nonzeros: u32) -> u64 {
    5_000 + 12 * u64::from(nonzeros)
}

/// `Intra_Predict`: fixed (Fig. 5: avg = wc = 4 000).
#[must_use]
pub fn intra_cycles() -> u64 {
    4_000
}

/// `Compress`: affine in coded bits (typical ≈ 400 bits ⇒ 5 000 cycles;
/// bursts clamp at the 50 000 worst case downstream).
#[must_use]
pub fn compress_cycles(bits: u32) -> u64 {
    3_000 + 5 * u64::from(bits)
}

/// `Inverse_Quantize`: affine in nonzeros (typical ≈ 80 ⇒ 4 000).
#[must_use]
pub fn inverse_quantize_cycles(nonzeros: u32) -> u64 {
    3_600 + 5 * u64::from(nonzeros)
}

/// `Inverse_Discrete_Cosine_Transform`: affine in nonzeros (typical ≈ 83
/// ⇒ 20 000).
#[must_use]
pub fn idct_cycles(nonzeros: u32) -> u64 {
    17_500 + 30 * u64::from(nonzeros)
}

/// `Reconstruct`: affine in nonzeros (typical ≈ 80 ⇒ 10 000).
#[must_use]
pub fn reconstruct_cycles(nonzeros: u32) -> u64 {
    9_600 + 5 * u64::from(nonzeros)
}

/// Wall-clock calibration: the cycles-per-second rate at which a frame of
/// `macroblocks` macroblocks — carrying its proportional share of the
/// paper's 320 Mcycle period — spans exactly `wall_period` of real time.
///
/// At the paper's own scale this recovers the 8 GHz platform
/// (`wall_rate(1584, 40ms) == fig5::CLOCK_HZ`); smaller frames or longer
/// wall periods scale the rate down, which is how the live example runs
/// the pixel encoder on commodity hardware without violating deadlines.
/// Feed the result to `fgqos_sim::runtime::WallClock::new`.
///
/// # Panics
///
/// Panics if `macroblocks` is zero or `wall_period` is zero.
#[must_use]
pub fn wall_rate(macroblocks: usize, wall_period: Duration) -> u64 {
    assert!(macroblocks > 0, "macroblocks must be positive");
    let period_cycles = (u128::from(fig5::PERIOD_CYCLES) * macroblocks as u128
        / fig5::MACROBLOCKS_PER_FRAME as u128) as u64;
    // The rate arithmetic lives in one place: WallClock::scaled.
    fgqos_sim::runtime::WallClock::scaled(fgqos_time::Cycles::new(period_cycles), wall_period)
        .cycles_per_sec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motion_calibration_hits_fig5_averages_at_typical_work() {
        for q in 0..8u8 {
            let cycles = motion_cycles(q, typical_evaluations(q));
            let (avg, _) = fig5::MOTION_ESTIMATE_TIMES[q as usize];
            assert_eq!(cycles, avg, "q{q}");
        }
    }

    #[test]
    fn motion_full_search_stays_under_worst_case() {
        for q in 0..8u8 {
            let r = radius_for_quality(q);
            let window = ((2 * r + 1) * (2 * r + 1)) as u32;
            let cycles = motion_cycles(q, window);
            let (_, wc) = fig5::MOTION_ESTIMATE_TIMES[q as usize];
            // Full search = typical / 0.7 ≈ 1.43x the average — well
            // under every Fig. 5 worst case (wc/avg >= 3.5 at q>=1). At
            // q0 a single evaluation is the whole window.
            assert!(cycles <= wc, "q{q}: full search {cycles} exceeds wc {wc}");
        }
    }

    #[test]
    fn early_exit_makes_static_content_cheap() {
        // One evaluation at q7 should cost far less than the average.
        let one = motion_cycles(7, 1);
        let (avg, _) = fig5::MOTION_ESTIMATE_TIMES[7];
        assert!(one * 100 < avg, "one eval costs {one}");
    }

    #[test]
    fn affine_actions_hit_averages_at_typical_work() {
        assert_eq!(quantize_cycles(83), 5_996);
        assert_eq!(compress_cycles(400), 5_000);
        assert_eq!(inverse_quantize_cycles(80), 4_000);
        assert_eq!(idct_cycles(83), 19_990);
        assert_eq!(reconstruct_cycles(80), 10_000);
        assert_eq!(grab_cycles(), 12_000);
        assert_eq!(dct_cycles(), 16_000);
        assert_eq!(intra_cycles(), 4_000);
    }

    #[test]
    fn wall_rate_recovers_the_paper_platform() {
        // Full-size frames at the camera's real 40 ms period = 8 GHz.
        assert_eq!(
            wall_rate(fig5::MACROBLOCKS_PER_FRAME, Duration::from_millis(40)),
            fig5::CLOCK_HZ
        );
        // Stretching the period 1000x slows the platform 1000x.
        assert_eq!(
            wall_rate(fig5::MACROBLOCKS_PER_FRAME, Duration::from_secs(40)),
            fig5::CLOCK_HZ / 1000
        );
        // Rates never collapse to zero.
        assert!(wall_rate(1, Duration::from_secs(3600)) >= 1);
    }

    #[test]
    fn wall_rate_rejects_degenerate_inputs() {
        assert!(std::panic::catch_unwind(|| wall_rate(0, Duration::from_millis(1))).is_err());
        assert!(std::panic::catch_unwind(|| wall_rate(10, Duration::ZERO)).is_err());
    }

    #[test]
    fn work_monotonicity() {
        assert!(quantize_cycles(10) < quantize_cycles(100));
        assert!(compress_cycles(10) < compress_cycles(1_000));
        assert!(motion_cycles(3, 10) < motion_cycles(3, 60));
    }
}
