//! Property tests for the time domain: saturating arithmetic laws,
//! series algebra, and profile invariants under arbitrary update
//! sequences.

use fgqos_time::series::{is_feasible, min_slack, min_slack_from, prefix_sums, suffix_budgets};
use fgqos_time::{Cycles, Quality, QualityProfile, QualitySet, Slack};
use proptest::prelude::*;

fn c(v: u64) -> Cycles {
    Cycles::new(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cycles_addition_is_commutative_and_monotone(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        prop_assert_eq!(c(a) + c(b), c(b) + c(a));
        prop_assert!(c(a) + c(b) >= c(a));
    }

    #[test]
    fn infinity_is_absorbing(a in 0u64..1u64<<40) {
        prop_assert!((c(a) + Cycles::INFINITY).is_infinite());
        prop_assert!((Cycles::INFINITY - c(a)).is_infinite());
        prop_assert!(Cycles::INFINITY.saturating_mul(a.max(1)).is_infinite());
    }

    #[test]
    fn subtraction_floors_at_zero(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let d = c(a) - c(b);
        if a >= b {
            prop_assert_eq!(d, c(a - b));
        } else {
            prop_assert_eq!(d, Cycles::ZERO);
        }
    }

    #[test]
    fn slack_from_is_antisymmetric(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let s1 = c(a).slack_from(c(b));
        let s2 = c(b).slack_from(c(a));
        prop_assert_eq!(s1.get(), -s2.get());
        prop_assert_eq!(s1.is_nonnegative(), a >= b);
    }

    #[test]
    fn slack_admits_iff_within_budget(bound in 0i128..1i128<<40, t in 0u64..1u64<<40) {
        let s = Slack::new(bound);
        prop_assert_eq!(s.admits(c(t)), i128::from(t) <= bound);
    }

    #[test]
    fn prefix_sums_are_monotone_and_total(durs in proptest::collection::vec(0u64..1u64<<30, 0..20)) {
        let cs: Vec<Cycles> = durs.iter().copied().map(c).collect();
        let hat = prefix_sums(&cs);
        prop_assert_eq!(hat.len(), cs.len());
        for w in hat.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        if let Some(last) = hat.last() {
            prop_assert_eq!(*last, cs.iter().copied().sum::<Cycles>());
        }
    }

    /// The suffix-budget table is exactly the largest admissible start
    /// time of each suffix.
    #[test]
    fn suffix_budgets_are_tight(
        pairs in proptest::collection::vec((1u64..1000, 1u64..2000), 1..12)
    ) {
        let durations: Vec<Cycles> = pairs.iter().map(|&(d, _)| c(d)).collect();
        let deadlines: Vec<Cycles> = pairs.iter().map(|&(_, dl)| c(dl)).collect();
        let table = suffix_budgets(&deadlines, &durations);
        for i in 0..durations.len() {
            let b = table[i];
            if b.is_nonnegative() {
                let t = Cycles::new(u64::try_from(b.get()).unwrap());
                prop_assert!(min_slack_from(t, &deadlines[i..], &durations[i..]).is_nonnegative());
                prop_assert!(!min_slack_from(t + c(1), &deadlines[i..], &durations[i..]).is_nonnegative());
            } else {
                prop_assert!(!min_slack_from(Cycles::ZERO, &deadlines[i..], &durations[i..]).is_nonnegative());
            }
        }
    }

    /// min_slack is consistent with feasibility and with the offset form.
    #[test]
    fn min_slack_consistency(
        pairs in proptest::collection::vec((1u64..1000, 1u64..3000), 1..12),
        offset in 0u64..500,
    ) {
        let durations: Vec<Cycles> = pairs.iter().map(|&(d, _)| c(d)).collect();
        let deadlines: Vec<Cycles> = pairs.iter().map(|&(_, dl)| c(dl)).collect();
        prop_assert_eq!(
            is_feasible(&deadlines, &durations),
            min_slack(&deadlines, &durations).is_nonnegative()
        );
        // Offsetting by x reduces the slack by exactly x (finite case).
        let s0 = min_slack(&deadlines, &durations);
        let s1 = min_slack_from(c(offset), &deadlines, &durations);
        prop_assert_eq!(s1.get(), s0.get() - i128::from(offset));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Profile invariants survive arbitrary interleavings of update_avg:
    /// avg <= worst everywhere and monotone in the level.
    #[test]
    fn profile_invariants_under_random_updates(
        base in proptest::collection::vec((1u64..500, 1u64..4), 3),
        updates in proptest::collection::vec((0usize..3, 0u8..3, 0u64..5000), 0..40),
    ) {
        let qs = QualitySet::contiguous(0, 2).unwrap();
        let mut pb = QualityProfile::builder(qs, 3);
        for (a, &(b0, growth)) in base.iter().enumerate() {
            let rows: Vec<(u64, u64)> = (0..3u64)
                .map(|q| {
                    let avg = b0 * (1 + q * growth);
                    (avg, avg * 2)
                })
                .collect();
            pb.set_levels(a, &rows).unwrap();
        }
        let mut p = pb.build().unwrap();
        for &(a, q, v) in &updates {
            p.update_avg(a, Quality::new(q), Cycles::new(v)).unwrap();
        }
        for a in 0..3 {
            for q in 0..3u8 {
                prop_assert!(p.avg_idx(a, q) <= p.worst_idx(a, q), "avg>wc at {a},{q}");
            }
            for q in 0..2u8 {
                prop_assert!(
                    p.avg_idx(a, q) <= p.avg_idx(a, q + 1),
                    "avg not monotone at {a},{q}"
                );
            }
        }
    }

    /// Tiling preserves per-copy lookups.
    #[test]
    fn tile_replicates_actions(copies in 1usize..6, base in 1u64..100) {
        let qs = QualitySet::contiguous(0, 1).unwrap();
        let mut pb = QualityProfile::builder(qs, 2);
        pb.set_levels(0, &[(base, base * 2), (base * 2, base * 4)]).unwrap();
        pb.set_constant(1, base + 1, base + 2).unwrap();
        let p = pb.build().unwrap();
        let t = p.tile(copies);
        prop_assert_eq!(t.n_actions(), 2 * copies);
        for k in 0..copies {
            for a in 0..2 {
                for q in 0..2u8 {
                    prop_assert_eq!(t.avg_idx(k * 2 + a, q), p.avg_idx(a, q));
                    prop_assert_eq!(t.worst_idx(k * 2 + a, q), p.worst_idx(a, q));
                }
            }
        }
        // Sensitivity classification is preserved per copy.
        for k in 0..copies {
            prop_assert!(t.quality_sensitive(k * 2));
            prop_assert!(!t.quality_sensitive(k * 2 + 1));
        }
    }
}
