//! Deadline functions `D_q` (Definition 2.3).

use fgqos_graph::ActionId;

use crate::{ActionIdx, Cycles, Quality, QualitySet, TimeError};

/// Per-action, per-quality absolute deadlines, counted from the beginning
/// of the cycle.
///
/// Deadlines may be `+∞` (soft or unconstrained actions). The paper's
/// prototype tool requires the *order relation* between deadlines to be
/// independent of quality; [`DeadlineMap::has_quality_independent_order`]
/// checks that property, and quality-independent maps built with
/// [`DeadlineMap::uniform`] satisfy it trivially.
///
/// # Example
///
/// ```
/// use fgqos_time::{Cycles, DeadlineMap, QualitySet};
///
/// # fn main() -> Result<(), fgqos_time::TimeError> {
/// let qs = QualitySet::contiguous(0, 1)?;
/// let d = DeadlineMap::uniform(qs, vec![Cycles::new(100), Cycles::INFINITY]);
/// assert_eq!(d.deadline_idx(0, 1), Cycles::new(100));
/// assert!(d.is_quality_independent());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineMap {
    qualities: QualitySet,
    n_actions: usize,
    /// `table[action * |Q| + quality_index]`
    table: Vec<Cycles>,
    quality_independent: bool,
}

impl DeadlineMap {
    /// A quality-independent map: one deadline per action.
    #[must_use]
    pub fn uniform(qualities: QualitySet, deadlines: Vec<Cycles>) -> Self {
        let nq = qualities.len();
        let n_actions = deadlines.len();
        let mut table = Vec::with_capacity(n_actions * nq);
        for &d in &deadlines {
            for _ in 0..nq {
                table.push(d);
            }
        }
        DeadlineMap {
            qualities,
            n_actions,
            table,
            quality_independent: true,
        }
    }

    /// A fully general map: `rows[action][quality_index]`.
    ///
    /// # Errors
    ///
    /// [`TimeError::LevelCountMismatch`] if any row length differs from
    /// `|Q|`.
    pub fn per_quality(qualities: QualitySet, rows: Vec<Vec<Cycles>>) -> Result<Self, TimeError> {
        let nq = qualities.len();
        let n_actions = rows.len();
        let mut table = Vec::with_capacity(n_actions * nq);
        for row in &rows {
            if row.len() != nq {
                return Err(TimeError::LevelCountMismatch {
                    expected: nq,
                    actual: row.len(),
                });
            }
            table.extend_from_slice(row);
        }
        let mut map = DeadlineMap {
            qualities,
            n_actions,
            table,
            quality_independent: false,
        };
        map.quality_independent = map.compute_quality_independent();
        Ok(map)
    }

    fn compute_quality_independent(&self) -> bool {
        let nq = self.qualities.len();
        (0..self.n_actions).all(|a| {
            let first = self.table[a * nq];
            (1..nq).all(|qi| self.table[a * nq + qi] == first)
        })
    }

    /// Number of actions covered.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The quality set this map is indexed by.
    #[must_use]
    pub fn qualities(&self) -> &QualitySet {
        &self.qualities
    }

    /// Whether `D_q(a)` is the same for every `q` (not just same order).
    #[must_use]
    pub fn is_quality_independent(&self) -> bool {
        self.quality_independent
    }

    /// `D_q(a)` by dense action index.
    ///
    /// # Panics
    ///
    /// Panics if the action index is out of range or `q` is not in the
    /// quality set.
    #[must_use]
    pub fn deadline_idx(&self, action: ActionIdx, q: impl Into<Quality>) -> Cycles {
        let q = q.into();
        let qidx = self
            .qualities
            .index_of(q)
            .unwrap_or_else(|| panic!("quality {q} not in deadline map"));
        self.table[action * self.qualities.len() + qidx]
    }

    /// `D_q(a)` for a graph action id.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DeadlineMap::deadline_idx`].
    #[must_use]
    pub fn deadline(&self, action: ActionId, q: impl Into<Quality>) -> Cycles {
        self.deadline_idx(action.index(), q)
    }

    /// Checks the prototype-tool precondition: the total preorder induced
    /// on actions by `D_q` is the same for every quality level.
    ///
    /// Runs in `O(|Q| · n log n)`.
    #[must_use]
    pub fn has_quality_independent_order(&self) -> bool {
        if self.quality_independent || self.n_actions < 2 {
            return true;
        }
        let nq = self.qualities.len();
        let key = |a: usize, qi: usize| self.table[a * nq + qi];
        // Reference permutation and adjacent-equality pattern at q index 0.
        let mut reference: Vec<usize> = (0..self.n_actions).collect();
        reference.sort_by_key(|&a| (key(a, 0), a));
        let ref_eq: Vec<bool> = reference
            .windows(2)
            .map(|w| key(w[0], 0) == key(w[1], 0))
            .collect();
        for qi in 1..nq {
            let mut perm: Vec<usize> = (0..self.n_actions).collect();
            perm.sort_by_key(|&a| (key(a, qi), a));
            // The permutations may differ inside tied groups; normalize by
            // checking that each reference-adjacent pair keeps its relation.
            for (w, &was_eq) in reference.windows(2).zip(&ref_eq) {
                let (da, db) = (key(w[0], qi), key(w[1], qi));
                if was_eq {
                    if da != db {
                        return false;
                    }
                } else if da >= db {
                    return false;
                }
            }
            // And that the q-level order does not invert any reference pair:
            // guaranteed by the adjacent checks plus transitivity, but the
            // sorted perm must agree on strictly-ordered groups; verify
            // cheaply that sorting by qi keys reproduces the same group
            // boundaries.
            let _ = perm;
        }
        true
    }

    /// Pointwise minimum of deadlines across all quality levels, a safe
    /// lower bound used by conservative analyses.
    #[must_use]
    pub fn min_over_qualities(&self, action: ActionIdx) -> Cycles {
        let nq = self.qualities.len();
        (0..nq)
            .map(|qi| self.table[action * nq + qi])
            .fold(Cycles::INFINITY, Cycles::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs2() -> QualitySet {
        QualitySet::contiguous(0, 1).unwrap()
    }

    #[test]
    fn uniform_map_is_quality_independent() {
        let d = DeadlineMap::uniform(qs2(), vec![Cycles::new(10), Cycles::new(20)]);
        assert!(d.is_quality_independent());
        assert!(d.has_quality_independent_order());
        assert_eq!(d.deadline_idx(1, 0), Cycles::new(20));
        assert_eq!(d.deadline(ActionId::from_index(0), 1), Cycles::new(10));
        assert_eq!(d.n_actions(), 2);
    }

    #[test]
    fn per_quality_detects_independence() {
        let d = DeadlineMap::per_quality(
            qs2(),
            vec![
                vec![Cycles::new(5), Cycles::new(5)],
                vec![Cycles::new(9), Cycles::new(9)],
            ],
        )
        .unwrap();
        assert!(d.is_quality_independent());
    }

    #[test]
    fn per_quality_rejects_ragged_rows() {
        let err = DeadlineMap::per_quality(qs2(), vec![vec![Cycles::new(5)]]).unwrap_err();
        assert_eq!(
            err,
            TimeError::LevelCountMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn order_independence_holds_for_shifted_deadlines() {
        // D_q(a) = base(a) + q * 10: order preserved across q.
        let d = DeadlineMap::per_quality(
            qs2(),
            vec![
                vec![Cycles::new(10), Cycles::new(20)],
                vec![Cycles::new(30), Cycles::new(40)],
            ],
        )
        .unwrap();
        assert!(!d.is_quality_independent());
        assert!(d.has_quality_independent_order());
    }

    #[test]
    fn order_independence_fails_on_swap() {
        let d = DeadlineMap::per_quality(
            qs2(),
            vec![
                vec![Cycles::new(10), Cycles::new(40)],
                vec![Cycles::new(30), Cycles::new(20)],
            ],
        )
        .unwrap();
        assert!(!d.has_quality_independent_order());
    }

    #[test]
    fn order_independence_fails_when_tie_breaks() {
        let d = DeadlineMap::per_quality(
            qs2(),
            vec![
                vec![Cycles::new(10), Cycles::new(10)],
                vec![Cycles::new(10), Cycles::new(20)],
            ],
        )
        .unwrap();
        assert!(!d.has_quality_independent_order());
    }

    #[test]
    fn min_over_qualities_takes_pointwise_min() {
        let d =
            DeadlineMap::per_quality(qs2(), vec![vec![Cycles::new(50), Cycles::new(30)]]).unwrap();
        assert_eq!(d.min_over_qualities(0), Cycles::new(30));
        let d = DeadlineMap::uniform(qs2(), vec![Cycles::INFINITY]);
        assert_eq!(d.min_over_qualities(0), Cycles::INFINITY);
    }
}
