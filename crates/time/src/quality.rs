//! Quality levels and quality sets (Definition 2.3).

use std::fmt;

use crate::TimeError;

/// One quality level, a small integer parameter of an action.
///
/// Higher levels mean more work and better output quality (execution times
/// are non-decreasing in the level, Definition 2.3). The paper's encoder
/// uses levels 0–7 for `Motion_Estimate`.
///
/// # Example
///
/// ```
/// use fgqos_time::Quality;
///
/// let q = Quality::new(3);
/// assert_eq!(q.level(), 3);
/// assert!(Quality::new(4) > q);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Quality(u8);

impl Quality {
    /// Creates a quality level.
    #[must_use]
    pub fn new(level: u8) -> Self {
        Quality(level)
    }

    /// The integer level.
    #[must_use]
    pub fn level(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u8> for Quality {
    fn from(level: u8) -> Self {
        Quality(level)
    }
}

/// The finite, non-empty set `Q` of quality levels, sorted ascending.
///
/// Provides the `q_min = min(Q)` element the safety constraint falls back
/// to, and the dense index used by quality-indexed tables.
///
/// # Example
///
/// ```
/// use fgqos_time::{Quality, QualitySet};
///
/// # fn main() -> Result<(), fgqos_time::TimeError> {
/// let q = QualitySet::contiguous(0, 7)?;
/// assert_eq!(q.len(), 8);
/// assert_eq!(q.min(), Quality::new(0));
/// assert_eq!(q.index_of(Quality::new(5)), Some(5));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QualitySet {
    levels: Vec<Quality>,
}

impl QualitySet {
    /// Builds a quality set from arbitrary levels.
    ///
    /// Levels are sorted and must be distinct.
    ///
    /// # Errors
    ///
    /// [`TimeError::EmptyQualitySet`] if `levels` is empty,
    /// [`TimeError::DuplicateQuality`] on repeated levels.
    pub fn new(mut levels: Vec<u8>) -> Result<Self, TimeError> {
        if levels.is_empty() {
            return Err(TimeError::EmptyQualitySet);
        }
        levels.sort_unstable();
        for w in levels.windows(2) {
            if w[0] == w[1] {
                return Err(TimeError::DuplicateQuality(Quality::new(w[0])));
            }
        }
        Ok(QualitySet {
            levels: levels.into_iter().map(Quality::new).collect(),
        })
    }

    /// The contiguous set `{lo, lo+1, ..., hi}`.
    ///
    /// # Errors
    ///
    /// [`TimeError::EmptyQualitySet`] if `lo > hi`.
    pub fn contiguous(lo: u8, hi: u8) -> Result<Self, TimeError> {
        if lo > hi {
            return Err(TimeError::EmptyQualitySet);
        }
        Ok(QualitySet {
            levels: (lo..=hi).map(Quality::new).collect(),
        })
    }

    /// A single-level set (degenerate control: constant quality).
    #[must_use]
    pub fn singleton(q: Quality) -> Self {
        QualitySet { levels: vec![q] }
    }

    /// Number of levels `|Q|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Quality sets are never empty; this always returns `false` and exists
    /// for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `q_min = min(Q)`.
    #[must_use]
    pub fn min(&self) -> Quality {
        self.levels[0]
    }

    /// `max(Q)`.
    #[must_use]
    pub fn max(&self) -> Quality {
        *self.levels.last().expect("quality set is non-empty")
    }

    /// Whether `q ∈ Q`.
    #[must_use]
    pub fn contains(&self, q: Quality) -> bool {
        self.levels.binary_search(&q).is_ok()
    }

    /// Dense index of `q` in ascending order, if present.
    #[must_use]
    pub fn index_of(&self, q: Quality) -> Option<usize> {
        self.levels.binary_search(&q).ok()
    }

    /// The level at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[must_use]
    pub fn at(&self, idx: usize) -> Quality {
        self.levels[idx]
    }

    /// Iterates levels in ascending order.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Quality> + ExactSizeIterator + '_ {
        self.levels.iter().copied()
    }

    /// Iterates levels in descending order (the quality manager scans from
    /// the maximum downwards).
    pub fn descending(&self) -> impl Iterator<Item = Quality> + '_ {
        self.levels.iter().rev().copied()
    }

    /// The greatest level strictly below `q`, if any.
    #[must_use]
    pub fn below(&self, q: Quality) -> Option<Quality> {
        match self.levels.binary_search(&q) {
            Ok(0) | Err(0) => None,
            Ok(i) | Err(i) => Some(self.levels[i - 1]),
        }
    }

    /// The smallest level strictly above `q`, if any.
    #[must_use]
    pub fn above(&self, q: Quality) -> Option<Quality> {
        match self.levels.binary_search(&q) {
            Ok(i) if i + 1 < self.levels.len() => Some(self.levels[i + 1]),
            Ok(_) => None,
            Err(i) if i < self.levels.len() => Some(self.levels[i]),
            Err(_) => None,
        }
    }

    /// Clamps an arbitrary level into the set (nearest member below, else
    /// the minimum).
    #[must_use]
    pub fn clamp(&self, q: Quality) -> Quality {
        match self.levels.binary_search(&q) {
            Ok(i) => self.levels[i],
            Err(0) => self.levels[0],
            Err(i) => self.levels[i - 1],
        }
    }
}

impl fmt::Display for QualitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, q) in self.levels.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", q.level())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_and_indexing() {
        let q = QualitySet::contiguous(2, 5).unwrap();
        assert_eq!(q.len(), 4);
        assert_eq!(q.min(), Quality::new(2));
        assert_eq!(q.max(), Quality::new(5));
        assert_eq!(q.index_of(Quality::new(4)), Some(2));
        assert_eq!(q.index_of(Quality::new(9)), None);
        assert_eq!(q.at(0), Quality::new(2));
    }

    #[test]
    fn new_sorts_and_rejects_duplicates() {
        let q = QualitySet::new(vec![5, 1, 3]).unwrap();
        assert_eq!(q.iter().map(Quality::level).collect::<Vec<_>>(), [1, 3, 5]);
        assert!(matches!(
            QualitySet::new(vec![1, 1]),
            Err(TimeError::DuplicateQuality(_))
        ));
        assert!(matches!(
            QualitySet::new(vec![]),
            Err(TimeError::EmptyQualitySet)
        ));
        assert!(matches!(
            QualitySet::contiguous(3, 2),
            Err(TimeError::EmptyQualitySet)
        ));
    }

    #[test]
    fn descending_scan() {
        let q = QualitySet::contiguous(0, 2).unwrap();
        let levels: Vec<u8> = q.descending().map(Quality::level).collect();
        assert_eq!(levels, [2, 1, 0]);
    }

    #[test]
    fn neighbours() {
        let q = QualitySet::new(vec![0, 2, 4]).unwrap();
        assert_eq!(q.below(Quality::new(2)), Some(Quality::new(0)));
        assert_eq!(q.below(Quality::new(0)), None);
        assert_eq!(q.below(Quality::new(3)), Some(Quality::new(2)));
        assert_eq!(q.above(Quality::new(2)), Some(Quality::new(4)));
        assert_eq!(q.above(Quality::new(4)), None);
        assert_eq!(q.above(Quality::new(1)), Some(Quality::new(2)));
    }

    #[test]
    fn clamp_picks_nearest_member_below() {
        let q = QualitySet::new(vec![1, 3, 6]).unwrap();
        assert_eq!(q.clamp(Quality::new(0)), Quality::new(1));
        assert_eq!(q.clamp(Quality::new(3)), Quality::new(3));
        assert_eq!(q.clamp(Quality::new(5)), Quality::new(3));
        assert_eq!(q.clamp(Quality::new(9)), Quality::new(6));
    }

    #[test]
    fn singleton_set() {
        let q = QualitySet::singleton(Quality::new(3));
        assert_eq!(q.len(), 1);
        assert_eq!(q.min(), q.max());
        assert!(!q.is_empty());
    }

    #[test]
    fn display_formats() {
        let q = QualitySet::contiguous(0, 2).unwrap();
        assert_eq!(q.to_string(), "{0, 1, 2}");
        assert_eq!(Quality::new(7).to_string(), "q7");
    }
}
