//! The cycle-count time domain `R+ ∪ {+∞}` and signed slack values.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A duration or instant measured in CPU cycles, in `N ∪ {+∞}`.
///
/// The paper's execution-time and deadline functions map into
/// `R+ ∪ {+∞}` (Definition 2.1); the experimental platform counts discrete
/// CPU cycles, so the carrier here is `u64` with [`Cycles::INFINITY`] as the
/// absorbing top element. All arithmetic saturates: `INFINITY + x` and
/// `INFINITY - x` stay infinite, finite subtraction floors at zero (use
/// [`Slack`] when a signed margin is needed).
///
/// # Example
///
/// ```
/// use fgqos_time::Cycles;
///
/// let t = Cycles::new(100) + Cycles::new(20);
/// assert_eq!(t, Cycles::new(120));
/// assert!(Cycles::INFINITY > t);
/// assert!((Cycles::INFINITY - t).is_infinite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);
    /// The absorbing `+∞` element (deadlines of unconstrained actions).
    pub const INFINITY: Cycles = Cycles(u64::MAX);
    /// One megacycle, the unit of the paper's figures (`Mcycle`).
    pub const MEGA: Cycles = Cycles(1_000_000);

    /// Creates a finite cycle count.
    ///
    /// # Panics
    ///
    /// Panics if `value == u64::MAX`, which is reserved for
    /// [`Cycles::INFINITY`]; use that constant explicitly instead.
    #[must_use]
    pub fn new(value: u64) -> Self {
        assert!(
            value != u64::MAX,
            "u64::MAX is reserved for Cycles::INFINITY"
        );
        Cycles(value)
    }

    /// Creates a cycle count from megacycles.
    #[must_use]
    pub fn mega(mcycles: u64) -> Self {
        Cycles::new(mcycles * 1_000_000)
    }

    /// The raw count. [`Cycles::INFINITY`] reports `u64::MAX`.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Whether this is the `+∞` element.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }

    /// Whether this is a finite count.
    #[must_use]
    pub fn is_finite(self) -> bool {
        !self.is_infinite()
    }

    /// The value in megacycles (floating point, for reporting).
    ///
    /// # Panics
    ///
    /// Panics if the value is infinite.
    #[must_use]
    pub fn as_mega(self) -> f64 {
        assert!(self.is_finite(), "cannot convert +inf to Mcycle");
        self.0 as f64 / 1e6
    }

    /// Saturating multiplication by a scalar (infinity is absorbing).
    #[must_use]
    pub fn saturating_mul(self, k: u64) -> Self {
        if self.is_infinite() {
            return self;
        }
        match self.0.checked_mul(k) {
            Some(v) if v != u64::MAX => Cycles(v),
            _ => Cycles::INFINITY,
        }
    }

    /// Minimum of two values.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two values.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Signed margin `self − other` as a [`Slack`].
    ///
    /// `INFINITY − x` is [`Slack::INFINITY`] for finite `x`; a finite value
    /// minus `INFINITY` is [`Slack::NEG_INFINITY`].
    #[must_use]
    pub fn slack_from(self, other: Cycles) -> Slack {
        match (self.is_infinite(), other.is_infinite()) {
            (true, false) => Slack::INFINITY,
            (false, true) => Slack::NEG_INFINITY,
            (true, true) => Slack::ZERO, // ∞ − ∞ : treated as no margin either way
            (false, false) => Slack(i128::from(self.0) - i128::from(other.0)),
        }
    }
}

impl Add for Cycles {
    type Output = Cycles;

    fn add(self, rhs: Cycles) -> Cycles {
        if self.is_infinite() || rhs.is_infinite() {
            return Cycles::INFINITY;
        }
        match self.0.checked_add(rhs.0) {
            Some(v) if v != u64::MAX => Cycles(v),
            _ => Cycles::INFINITY,
        }
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;

    /// Saturating subtraction: floors at [`Cycles::ZERO`]; `∞ − x = ∞`.
    fn sub(self, rhs: Cycles) -> Cycles {
        if self.is_infinite() {
            return Cycles::INFINITY;
        }
        if rhs.is_infinite() {
            return Cycles::ZERO;
        }
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "+inf")
        } else if self.0 >= 1_000_000 && self.0.is_multiple_of(100_000) {
            write!(f, "{}Mcy", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}cy", self.0)
        }
    }
}

/// A signed time margin `D − Ĉ`, in cycles, with `±∞`.
///
/// Slack is the quantity the feasibility criterion of Definition 2.2 and
/// the `Qual_Const` predicates of Section 2.2 compare against the elapsed
/// time `t`: a schedule is feasible iff its minimal slack is non-negative.
///
/// # Example
///
/// ```
/// use fgqos_time::{Cycles, Slack};
///
/// let s = Cycles::new(100).slack_from(Cycles::new(130));
/// assert_eq!(s, Slack::new(-30));
/// assert!(!s.is_nonnegative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slack(i128);

impl Slack {
    /// Zero margin.
    pub const ZERO: Slack = Slack(0);
    /// Positive infinity (deadline `+∞`).
    pub const INFINITY: Slack = Slack(i128::MAX);
    /// Negative infinity (infinitely infeasible).
    pub const NEG_INFINITY: Slack = Slack(i128::MIN);

    /// Creates a finite slack.
    #[must_use]
    pub fn new(value: i128) -> Self {
        Slack(value)
    }

    /// The raw signed value.
    #[must_use]
    pub fn get(self) -> i128 {
        self.0
    }

    /// Whether the margin admits execution (`≥ 0`).
    #[must_use]
    pub fn is_nonnegative(self) -> bool {
        self.0 >= 0
    }

    /// Whether the elapsed time `t` satisfies `t ≤ self`, the comparison
    /// performed by the `Qual_Const` predicates.
    #[must_use]
    pub fn admits(self, t: Cycles) -> bool {
        if self == Slack::INFINITY {
            return true;
        }
        if t.is_infinite() {
            return false;
        }
        i128::from(t.get()) <= self.0
    }

    /// Minimum of two slacks.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Subtracts a (finite or infinite) duration from the margin.
    #[must_use]
    pub fn minus(self, c: Cycles) -> Self {
        if self == Slack::INFINITY {
            return self;
        }
        if self == Slack::NEG_INFINITY || c.is_infinite() {
            return Slack::NEG_INFINITY;
        }
        Slack(self.0 - i128::from(c.get()))
    }
}

impl fmt::Display for Slack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Slack::INFINITY => write!(f, "+inf"),
            Slack::NEG_INFINITY => write!(f, "-inf"),
            Slack(v) => write!(f, "{v}cy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_saturates_at_infinity() {
        assert_eq!(Cycles::new(1) + Cycles::new(2), Cycles::new(3));
        assert!((Cycles::INFINITY + Cycles::new(5)).is_infinite());
        assert!((Cycles::new(5) + Cycles::INFINITY).is_infinite());
        assert!((Cycles(u64::MAX - 1) + Cycles(u64::MAX - 1)).is_infinite());
    }

    #[test]
    fn subtraction_floors_and_preserves_infinity() {
        assert_eq!(Cycles::new(5) - Cycles::new(7), Cycles::ZERO);
        assert_eq!(Cycles::new(7) - Cycles::new(5), Cycles::new(2));
        assert!((Cycles::INFINITY - Cycles::new(5)).is_infinite());
        assert_eq!(Cycles::new(5) - Cycles::INFINITY, Cycles::ZERO);
    }

    #[test]
    fn new_rejects_reserved_max() {
        let r = std::panic::catch_unwind(|| Cycles::new(u64::MAX));
        assert!(r.is_err());
    }

    #[test]
    fn mega_and_display() {
        assert_eq!(Cycles::mega(320).get(), 320_000_000);
        assert_eq!(Cycles::mega(320).to_string(), "320Mcy");
        assert_eq!(Cycles::new(42).to_string(), "42cy");
        assert_eq!(Cycles::INFINITY.to_string(), "+inf");
        assert!((Cycles::mega(2).as_mega() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
        let with_inf: Cycles = [Cycles::new(1), Cycles::INFINITY].into_iter().sum();
        assert!(with_inf.is_infinite());
    }

    #[test]
    fn saturating_mul() {
        assert_eq!(Cycles::new(7).saturating_mul(3), Cycles::new(21));
        assert!(Cycles::new(u64::MAX / 2).saturating_mul(3).is_infinite());
        assert!(Cycles::INFINITY.saturating_mul(0).is_infinite());
    }

    #[test]
    fn slack_signs() {
        assert_eq!(Cycles::new(10).slack_from(Cycles::new(4)), Slack::new(6));
        assert_eq!(Cycles::new(4).slack_from(Cycles::new(10)), Slack::new(-6));
        assert_eq!(Cycles::INFINITY.slack_from(Cycles::new(3)), Slack::INFINITY);
        assert_eq!(
            Cycles::new(3).slack_from(Cycles::INFINITY),
            Slack::NEG_INFINITY
        );
    }

    #[test]
    fn slack_admits_elapsed_time() {
        assert!(Slack::new(100).admits(Cycles::new(100)));
        assert!(Slack::new(100).admits(Cycles::new(99)));
        assert!(!Slack::new(100).admits(Cycles::new(101)));
        assert!(Slack::INFINITY.admits(Cycles::new(u64::MAX - 1)));
        assert!(!Slack::NEG_INFINITY.admits(Cycles::ZERO));
        assert!(Slack::INFINITY.admits(Cycles::INFINITY)); // t=inf admitted only by inf slack
        assert!(!Slack::new(5).admits(Cycles::INFINITY));
    }

    #[test]
    fn slack_minus_duration() {
        assert_eq!(Slack::new(10).minus(Cycles::new(4)), Slack::new(6));
        assert_eq!(Slack::INFINITY.minus(Cycles::new(4)), Slack::INFINITY);
        assert_eq!(Slack::new(10).minus(Cycles::INFINITY), Slack::NEG_INFINITY);
        assert_eq!(Slack::new(3).minus(Cycles::new(5)), Slack::new(-2));
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Cycles::new(3).min(Cycles::new(5)), Cycles::new(3));
        assert_eq!(Cycles::new(3).max(Cycles::INFINITY), Cycles::INFINITY);
        assert_eq!(Slack::new(3).min(Slack::NEG_INFINITY), Slack::NEG_INFINITY);
    }
}
