//! Error type of the time crate.

use std::error::Error;
use std::fmt;

use crate::Quality;

/// Dense action index used in error payloads (mirrors
/// `fgqos_graph::ActionId::index`).
pub type ActionIdx = usize;

/// Errors produced while building or querying time-domain structures.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeError {
    /// A quality set must be non-empty.
    EmptyQualitySet,
    /// A quality level occurs twice in a set.
    DuplicateQuality(Quality),
    /// A quality level is not a member of the profile's quality set.
    UnknownQuality(Quality),
    /// An action index is out of range for the profile.
    UnknownAction(ActionIdx),
    /// An average execution time exceeds the worst case at the same level.
    AvgExceedsWorst {
        /// Dense action index.
        action: ActionIdx,
        /// Offending quality level.
        quality: Quality,
    },
    /// Execution times must be non-decreasing in the quality level.
    NonMonotone {
        /// Dense action index.
        action: ActionIdx,
        /// First level at which monotonicity breaks.
        quality: Quality,
    },
    /// Execution times must be finite.
    InfiniteExecutionTime {
        /// Dense action index.
        action: ActionIdx,
        /// Offending quality level.
        quality: Quality,
    },
    /// An action was left without execution times.
    MissingTimes(ActionIdx),
    /// A table has the wrong number of quality levels.
    LevelCountMismatch {
        /// Expected `|Q|`.
        expected: usize,
        /// Provided count.
        actual: usize,
    },
}

impl fmt::Display for TimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeError::EmptyQualitySet => write!(f, "quality set must be non-empty"),
            TimeError::DuplicateQuality(q) => write!(f, "duplicate quality level {q}"),
            TimeError::UnknownQuality(q) => write!(f, "quality level {q} not in quality set"),
            TimeError::UnknownAction(a) => write!(f, "action index {a} out of range"),
            TimeError::AvgExceedsWorst { action, quality } => write!(
                f,
                "average time exceeds worst case for action {action} at {quality}"
            ),
            TimeError::NonMonotone { action, quality } => write!(
                f,
                "execution times decrease with quality for action {action} at {quality}"
            ),
            TimeError::InfiniteExecutionTime { action, quality } => write!(
                f,
                "infinite execution time for action {action} at {quality}"
            ),
            TimeError::MissingTimes(a) => {
                write!(f, "no execution times provided for action {a}")
            }
            TimeError::LevelCountMismatch { expected, actual } => write!(
                f,
                "expected times for {expected} quality levels, got {actual}"
            ),
        }
    }
}

impl Error for TimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = TimeError::AvgExceedsWorst {
            action: 2,
            quality: Quality::new(3),
        };
        assert!(e.to_string().contains("action 2"));
        assert!(e.to_string().contains("q3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimeError>();
    }
}
