//! Quality-parameterized execution-time profiles (`Cav_q`, `Cwc_q`).

use fgqos_graph::ActionId;

use crate::{ActionIdx, Cycles, Quality, QualitySet, TimeError};

/// Average and worst-case execution time of one action at one quality
/// level. Invariant (checked on construction): `avg ≤ worst`, both finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActionTimes {
    avg: Cycles,
    worst: Cycles,
}

impl ActionTimes {
    /// Creates a pair of execution times.
    ///
    /// # Errors
    ///
    /// [`TimeError::AvgExceedsWorst`] (reported with placeholder indices by
    /// the profile builder) if `avg > worst`;
    /// [`TimeError::InfiniteExecutionTime`] if either value is infinite.
    pub fn new(avg: Cycles, worst: Cycles) -> Result<Self, TimeError> {
        if avg.is_infinite() || worst.is_infinite() {
            return Err(TimeError::InfiniteExecutionTime {
                action: 0,
                quality: Quality::new(0),
            });
        }
        if avg > worst {
            return Err(TimeError::AvgExceedsWorst {
                action: 0,
                quality: Quality::new(0),
            });
        }
        Ok(ActionTimes { avg, worst })
    }

    /// The average execution time `Cav`.
    #[must_use]
    pub fn avg(self) -> Cycles {
        self.avg
    }

    /// The worst-case execution time `Cwc`.
    #[must_use]
    pub fn worst(self) -> Cycles {
        self.worst
    }
}

/// The families `{Cav_q}` and `{Cwc_q}` of Definition 2.3 for all actions
/// of an application, stored as a dense `(action, quality)` table.
///
/// Invariants, validated by [`ProfileBuilder::build`]:
///
/// * every `(action, quality)` pair has finite times with `avg ≤ worst`;
/// * for a fixed action, both `avg` and `worst` are non-decreasing in the
///   quality level (higher quality costs at least as much).
///
/// # Example
///
/// ```
/// use fgqos_time::{Cycles, Quality, QualityProfile, QualitySet};
///
/// # fn main() -> Result<(), fgqos_time::TimeError> {
/// let qs = QualitySet::contiguous(0, 1)?;
/// let mut b = QualityProfile::builder(qs, 2);
/// b.set_levels(0, &[(10, 20), (30, 60)])?;   // quality-dependent action
/// b.set_constant(1, 5, 8)?;                  // quality-independent action
/// let p = b.build()?;
/// assert_eq!(p.worst_idx(0, 1), Cycles::new(60));
/// assert_eq!(p.avg_idx(1, 0), p.avg_idx(1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityProfile {
    qualities: QualitySet,
    n_actions: usize,
    /// `table[action * |Q| + quality_index]`
    table: Vec<ActionTimes>,
}

impl QualityProfile {
    /// Starts building a profile for `n_actions` actions over `qualities`.
    #[must_use]
    pub fn builder(qualities: QualitySet, n_actions: usize) -> ProfileBuilder {
        ProfileBuilder::new(qualities, n_actions)
    }

    /// The quality set this profile is indexed by.
    #[must_use]
    pub fn qualities(&self) -> &QualitySet {
        &self.qualities
    }

    /// Number of actions covered.
    #[must_use]
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    #[inline]
    fn slot(&self, action: ActionIdx, qidx: usize) -> usize {
        action * self.qualities.len() + qidx
    }

    /// `Cav_q(a)` by dense action index and quality level.
    ///
    /// # Panics
    ///
    /// Panics if the action index is out of range or `q` is not in the
    /// quality set.
    #[must_use]
    pub fn avg_idx(&self, action: ActionIdx, q: impl Into<Quality>) -> Cycles {
        let q = q.into();
        let qidx = self
            .qualities
            .index_of(q)
            .unwrap_or_else(|| panic!("quality {q} not in profile"));
        self.table[self.slot(action, qidx)].avg
    }

    /// `Cwc_q(a)` by dense action index and quality level.
    ///
    /// # Panics
    ///
    /// Same conditions as [`QualityProfile::avg_idx`].
    #[must_use]
    pub fn worst_idx(&self, action: ActionIdx, q: impl Into<Quality>) -> Cycles {
        let q = q.into();
        let qidx = self
            .qualities
            .index_of(q)
            .unwrap_or_else(|| panic!("quality {q} not in profile"));
        self.table[self.slot(action, qidx)].worst
    }

    /// `Cav_q(a)` for a graph action id.
    ///
    /// # Panics
    ///
    /// Same conditions as [`QualityProfile::avg_idx`].
    #[must_use]
    pub fn avg(&self, action: ActionId, q: impl Into<Quality>) -> Cycles {
        self.avg_idx(action.index(), q)
    }

    /// `Cwc_q(a)` for a graph action id.
    ///
    /// # Panics
    ///
    /// Same conditions as [`QualityProfile::worst_idx`].
    #[must_use]
    pub fn worst(&self, action: ActionId, q: impl Into<Quality>) -> Cycles {
        self.worst_idx(action.index(), q)
    }

    /// Both times at once, by quality index (hot path for the controller's
    /// table construction).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[must_use]
    pub fn times_by_qidx(&self, action: ActionIdx, qidx: usize) -> ActionTimes {
        self.table[self.slot(action, qidx)]
    }

    /// Sum of `Cav_q` over all actions, the expected cost of one cycle at
    /// constant quality `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in the quality set.
    #[must_use]
    pub fn total_avg(&self, q: impl Into<Quality>) -> Cycles {
        let q = q.into();
        (0..self.n_actions).map(|a| self.avg_idx(a, q)).sum()
    }

    /// Sum of `Cwc_q` over all actions.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in the quality set.
    #[must_use]
    pub fn total_worst(&self, q: impl Into<Quality>) -> Cycles {
        let q = q.into();
        (0..self.n_actions).map(|a| self.worst_idx(a, q)).sum()
    }

    /// Replaces the average time of one `(action, quality)` cell, clamping
    /// into `[0, Cwc]`, then restores monotonicity in `q` for that action's
    /// averages by isotonic projection (running maximum, capped by each
    /// level's worst case).
    ///
    /// This is the hook used by the online average-time estimators
    /// (Section 4: "learning techniques for better estimation of the
    /// average execution times").
    ///
    /// # Errors
    ///
    /// [`TimeError::UnknownAction`] / [`TimeError::UnknownQuality`] on bad
    /// coordinates.
    pub fn update_avg(
        &mut self,
        action: ActionIdx,
        q: Quality,
        new_avg: Cycles,
    ) -> Result<(), TimeError> {
        if action >= self.n_actions {
            return Err(TimeError::UnknownAction(action));
        }
        let qidx = self
            .qualities
            .index_of(q)
            .ok_or(TimeError::UnknownQuality(q))?;
        let nq = self.qualities.len();
        let slot = self.slot(action, qidx);
        let capped = new_avg.min(self.table[slot].worst);
        self.table[slot].avg = capped;
        // Isotonic repair: sweep up enforcing avg[i] >= avg[i-1], then the
        // per-level cap avg <= worst (worst is monotone, so capping keeps
        // the running max monotone).
        let base = action * nq;
        let mut running = Cycles::ZERO;
        for i in 0..nq {
            let cell = &mut self.table[base + i];
            running = running.max(cell.avg);
            cell.avg = running.min(cell.worst);
            running = cell.avg;
        }
        Ok(())
    }

    /// Whether `action`'s execution times actually vary with the quality
    /// level. Quality-insensitive actions (all of Fig. 5 except
    /// `Motion_Estimate`) accept any level without timing consequences;
    /// quality *metrics* (mean level, smoothness, PSNR mapping) should
    /// weight only sensitive actions.
    ///
    /// # Panics
    ///
    /// Panics if `action` is out of range.
    #[must_use]
    pub fn quality_sensitive(&self, action: ActionIdx) -> bool {
        let nq = self.qualities.len();
        assert!(action < self.n_actions, "action index out of range");
        let first = self.table[action * nq];
        (1..nq).any(|qi| self.table[action * nq + qi] != first)
    }

    /// Tiles the profile `copies` times: the result covers
    /// `copies · n_actions` actions, where the action at dense index
    /// `k · n_actions + a` has the times of action `a`.
    ///
    /// This expands a per-iteration body profile (9 actions for the Fig. 2
    /// pipeline) to the unrolled cycle graph (`N` macroblocks), matching
    /// the id layout of `fgqos_graph::iterate::IteratedGraph`.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    #[must_use]
    pub fn tile(&self, copies: usize) -> QualityProfile {
        assert!(copies > 0, "tile requires at least one copy");
        let mut table = Vec::with_capacity(self.table.len() * copies);
        for _ in 0..copies {
            table.extend_from_slice(&self.table);
        }
        QualityProfile {
            qualities: self.qualities.clone(),
            n_actions: self.n_actions * copies,
            table,
        }
    }

    /// In-place variant of [`QualityProfile::tile`]: writes `copies`
    /// copies of this profile into `out`, reusing `out`'s table buffer
    /// (no allocation once warm). `out`'s previous contents are
    /// discarded. Used by the per-frame estimator refresh path, where the
    /// tiled profile is rewritten every time the estimates move.
    ///
    /// # Panics
    ///
    /// Panics if `copies == 0`.
    pub fn tile_into(&self, copies: usize, out: &mut QualityProfile) {
        assert!(copies > 0, "tile requires at least one copy");
        if out.qualities != self.qualities {
            out.qualities = self.qualities.clone();
        }
        out.n_actions = self.n_actions * copies;
        out.table.clear();
        out.table.reserve(self.table.len() * copies);
        for _ in 0..copies {
            out.table.extend_from_slice(&self.table);
        }
    }

    /// Restricts the profile to a single quality level (used to model
    /// uncontrolled constant-quality builds).
    ///
    /// # Errors
    ///
    /// [`TimeError::UnknownQuality`] if `q` is not in the set.
    pub fn restrict_to(&self, q: Quality) -> Result<QualityProfile, TimeError> {
        let qidx = self
            .qualities
            .index_of(q)
            .ok_or(TimeError::UnknownQuality(q))?;
        let table = (0..self.n_actions)
            .map(|a| self.table[self.slot(a, qidx)])
            .collect();
        Ok(QualityProfile {
            qualities: QualitySet::singleton(q),
            n_actions: self.n_actions,
            table,
        })
    }
}

/// Incremental builder for [`QualityProfile`]; see the type-level example.
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    qualities: QualitySet,
    n_actions: usize,
    table: Vec<Option<ActionTimes>>,
}

impl ProfileBuilder {
    fn new(qualities: QualitySet, n_actions: usize) -> Self {
        ProfileBuilder {
            table: vec![None; n_actions * qualities.len()],
            qualities,
            n_actions,
        }
    }

    /// Sets the times of `action` at one quality level.
    ///
    /// # Errors
    ///
    /// [`TimeError::UnknownAction`], [`TimeError::UnknownQuality`],
    /// [`TimeError::AvgExceedsWorst`] or
    /// [`TimeError::InfiniteExecutionTime`].
    pub fn set(
        &mut self,
        action: ActionIdx,
        q: Quality,
        avg: Cycles,
        worst: Cycles,
    ) -> Result<&mut Self, TimeError> {
        if action >= self.n_actions {
            return Err(TimeError::UnknownAction(action));
        }
        let qidx = self
            .qualities
            .index_of(q)
            .ok_or(TimeError::UnknownQuality(q))?;
        let times = ActionTimes::new(avg, worst).map_err(|e| match e {
            TimeError::AvgExceedsWorst { .. } => TimeError::AvgExceedsWorst { action, quality: q },
            TimeError::InfiniteExecutionTime { .. } => {
                TimeError::InfiniteExecutionTime { action, quality: q }
            }
            other => other,
        })?;
        self.table[action * self.qualities.len() + qidx] = Some(times);
        Ok(self)
    }

    /// Sets `(avg, worst)` pairs for *all* quality levels of `action`, in
    /// ascending level order.
    ///
    /// # Errors
    ///
    /// [`TimeError::LevelCountMismatch`] if `times.len() != |Q|`, plus the
    /// conditions of [`ProfileBuilder::set`].
    pub fn set_levels(
        &mut self,
        action: ActionIdx,
        times: &[(u64, u64)],
    ) -> Result<&mut Self, TimeError> {
        if times.len() != self.qualities.len() {
            return Err(TimeError::LevelCountMismatch {
                expected: self.qualities.len(),
                actual: times.len(),
            });
        }
        let levels: Vec<Quality> = self.qualities.iter().collect();
        for (q, &(avg, worst)) in levels.into_iter().zip(times) {
            self.set(action, q, Cycles::new(avg), Cycles::new(worst))?;
        }
        Ok(self)
    }

    /// Gives `action` the same `(avg, worst)` at every quality level — the
    /// paper's quality-independent actions (all of Fig. 5 except
    /// `Motion_Estimate`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ProfileBuilder::set`].
    pub fn set_constant(
        &mut self,
        action: ActionIdx,
        avg: u64,
        worst: u64,
    ) -> Result<&mut Self, TimeError> {
        let levels: Vec<Quality> = self.qualities.iter().collect();
        for q in levels {
            self.set(action, q, Cycles::new(avg), Cycles::new(worst))?;
        }
        Ok(self)
    }

    /// Validates completeness and monotonicity and builds the profile.
    ///
    /// # Errors
    ///
    /// [`TimeError::MissingTimes`] for uncovered cells and
    /// [`TimeError::NonMonotone`] when times decrease with quality.
    pub fn build(self) -> Result<QualityProfile, TimeError> {
        let nq = self.qualities.len();
        let mut table = Vec::with_capacity(self.table.len());
        for (i, cell) in self.table.iter().enumerate() {
            match cell {
                Some(t) => table.push(*t),
                None => return Err(TimeError::MissingTimes(i / nq)),
            }
        }
        for a in 0..self.n_actions {
            for i in 1..nq {
                let prev = table[a * nq + i - 1];
                let cur = table[a * nq + i];
                if cur.avg < prev.avg || cur.worst < prev.worst {
                    return Err(TimeError::NonMonotone {
                        action: a,
                        quality: self.qualities.at(i),
                    });
                }
            }
        }
        Ok(QualityProfile {
            qualities: self.qualities,
            n_actions: self.n_actions,
            table,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile2() -> QualityProfile {
        let qs = QualitySet::contiguous(0, 2).unwrap();
        let mut b = QualityProfile::builder(qs, 2);
        b.set_levels(0, &[(10, 20), (30, 60), (50, 100)]).unwrap();
        b.set_constant(1, 5, 8).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lookup_by_index_and_id() {
        let p = profile2();
        assert_eq!(p.avg_idx(0, 1), Cycles::new(30));
        assert_eq!(p.worst_idx(0, 2), Cycles::new(100));
        assert_eq!(p.avg(ActionId::from_index(1), 2), Cycles::new(5));
        assert_eq!(p.n_actions(), 2);
        let t = p.times_by_qidx(0, 0);
        assert_eq!((t.avg(), t.worst()), (Cycles::new(10), Cycles::new(20)));
    }

    #[test]
    fn totals_sum_over_actions() {
        let p = profile2();
        assert_eq!(p.total_avg(0), Cycles::new(15));
        assert_eq!(p.total_worst(2), Cycles::new(108));
    }

    #[test]
    fn tile_into_matches_tile_and_reuses_buffers() {
        let p = profile2();
        let mut out = p.tile(1);
        for copies in [1usize, 3, 2] {
            p.tile_into(copies, &mut out);
            assert_eq!(out, p.tile(copies), "copies={copies}");
        }
    }

    #[test]
    fn build_rejects_missing_cells() {
        let qs = QualitySet::contiguous(0, 1).unwrap();
        let mut b = QualityProfile::builder(qs, 2);
        b.set_constant(0, 1, 2).unwrap();
        assert_eq!(b.build().unwrap_err(), TimeError::MissingTimes(1));
    }

    #[test]
    fn build_rejects_non_monotone() {
        let qs = QualitySet::contiguous(0, 1).unwrap();
        let mut b = QualityProfile::builder(qs, 1);
        b.set_levels(0, &[(30, 60), (10, 60)]).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            TimeError::NonMonotone { action: 0, .. }
        ));
    }

    #[test]
    fn set_rejects_avg_above_worst_and_infinities() {
        let qs = QualitySet::contiguous(0, 0).unwrap();
        let mut b = QualityProfile::builder(qs.clone(), 1);
        assert!(matches!(
            b.set(0, Quality::new(0), Cycles::new(10), Cycles::new(5)),
            Err(TimeError::AvgExceedsWorst { action: 0, .. })
        ));
        let mut b = QualityProfile::builder(qs, 1);
        assert!(matches!(
            b.set(0, Quality::new(0), Cycles::new(1), Cycles::INFINITY),
            Err(TimeError::InfiniteExecutionTime { .. })
        ));
    }

    #[test]
    fn set_rejects_bad_coordinates() {
        let qs = QualitySet::contiguous(0, 0).unwrap();
        let mut b = QualityProfile::builder(qs, 1);
        assert_eq!(
            b.set(5, Quality::new(0), Cycles::new(1), Cycles::new(2))
                .unwrap_err(),
            TimeError::UnknownAction(5)
        );
        assert_eq!(
            b.set(0, Quality::new(9), Cycles::new(1), Cycles::new(2))
                .unwrap_err(),
            TimeError::UnknownQuality(Quality::new(9))
        );
        assert_eq!(
            b.set_levels(0, &[(1, 2), (3, 4)]).unwrap_err(),
            TimeError::LevelCountMismatch {
                expected: 1,
                actual: 2
            }
        );
    }

    #[test]
    fn update_avg_clamps_and_remonotonizes() {
        let mut p = profile2();
        // Raise q0 average above q1's: isotonic sweep must lift q1.
        p.update_avg(0, Quality::new(0), Cycles::new(40)).unwrap();
        assert_eq!(p.avg_idx(0, 0), Cycles::new(20)); // capped at worst(q0)=20
        assert!(p.avg_idx(0, 1) >= p.avg_idx(0, 0));
        // Updates beyond worst are capped.
        p.update_avg(0, Quality::new(2), Cycles::new(500)).unwrap();
        assert_eq!(p.avg_idx(0, 2), Cycles::new(100));
        // Bad coordinates are reported.
        assert_eq!(
            p.update_avg(7, Quality::new(0), Cycles::new(1))
                .unwrap_err(),
            TimeError::UnknownAction(7)
        );
        assert_eq!(
            p.update_avg(0, Quality::new(9), Cycles::new(1))
                .unwrap_err(),
            TimeError::UnknownQuality(Quality::new(9))
        );
    }

    #[test]
    fn update_avg_keeps_invariants_under_lowering() {
        let mut p = profile2();
        p.update_avg(0, Quality::new(2), Cycles::new(1)).unwrap();
        // avg(q2) must stay >= avg(q1) by isotonic repair.
        assert!(p.avg_idx(0, 2) >= p.avg_idx(0, 1));
        for q in 0..3u8 {
            assert!(p.avg_idx(0, q) <= p.worst_idx(0, q));
        }
    }

    #[test]
    fn restrict_to_single_quality() {
        let p = profile2();
        let r = p.restrict_to(Quality::new(1)).unwrap();
        assert_eq!(r.qualities().len(), 1);
        assert_eq!(r.avg_idx(0, 1), Cycles::new(30));
        assert!(matches!(
            p.restrict_to(Quality::new(9)),
            Err(TimeError::UnknownQuality(_))
        ));
    }
}
