//! The paper's Figure 5 execution-time tables and Section 3 experiment
//! constants.
//!
//! The MPEG-4 encoder benchmark of Combaz et al. runs on a single XiRisc
//! processor at 8 GHz simulated with STMicroelectronics' eliXim tool; the
//! time unit is one CPU cycle. Only `Motion_Estimate` has quality-dependent
//! execution times (8 levels); the eight other actions of the Fig. 2
//! macroblock pipeline are quality-independent.

use crate::{QualityProfile, QualitySet, TimeError};

/// Canonical action names of the Fig. 2 macroblock pipeline.
pub mod names {
    /// Reads the next macroblock from the input frame.
    pub const GRAB: &str = "Grab_Macro_Block";
    /// Quality-parameterized motion search against the reference frame.
    pub const MOTION_ESTIMATE: &str = "Motion_Estimate";
    /// Forward 8×8 DCT of the residual.
    pub const DCT: &str = "Discrete_Cosine_Transform";
    /// Quantization of DCT coefficients.
    pub const QUANTIZE: &str = "Quantize";
    /// Intra prediction (DC) for intra-coded macroblocks.
    pub const INTRA_PREDICT: &str = "Intra_Predict";
    /// Entropy coding of quantized coefficients into the bitstream.
    pub const COMPRESS: &str = "Compress";
    /// Inverse quantization (decoder loop).
    pub const INVERSE_QUANTIZE: &str = "Inverse_Quantize";
    /// Inverse DCT (decoder loop).
    pub const IDCT: &str = "Inverse_Discrete_Cosine_Transform";
    /// Rebuilds the reference macroblock from the decoded residual.
    pub const RECONSTRUCT: &str = "Reconstruct";
}

/// Number of quality levels of the benchmark (`Q = {0, ..., 7}`).
pub const QUALITY_LEVELS: u8 = 8;

/// `(average, worst-case)` cycles of `Motion_Estimate` per quality level
/// 0–7 (Fig. 5, upper table).
pub const MOTION_ESTIMATE_TIMES: [(u64, u64); 8] = [
    (215, 1_000),
    (30_000, 100_000),
    (50_000, 200_000),
    (95_000, 350_000),
    (110_000, 500_000),
    (120_000, 1_200_000),
    (150_000, 1_200_000),
    (200_000, 1_500_000),
];

/// `(name, average, worst-case)` cycles of the quality-independent actions
/// (Fig. 5, lower table).
pub const FIXED_ACTION_TIMES: [(&str, u64, u64); 8] = [
    (names::GRAB, 12_000, 24_000),
    (names::DCT, 16_000, 16_000),
    (names::QUANTIZE, 6_000, 13_000),
    (names::INTRA_PREDICT, 4_000, 4_000),
    (names::COMPRESS, 5_000, 50_000),
    (names::INVERSE_QUANTIZE, 4_000, 5_000),
    (names::IDCT, 20_000, 50_000),
    (names::RECONSTRUCT, 10_000, 13_000),
];

/// Camera/display period `P`: one frame every 320 Mcycle (25 frame/s at
/// 8 GHz).
pub const PERIOD_CYCLES: u64 = 320_000_000;

/// Simulated clock rate of the XiRisc platform (8 GHz).
pub const CLOCK_HZ: u64 = 8_000_000_000;

/// Length of the benchmark stream (582 frames).
pub const FRAME_COUNT: usize = 582;

/// Number of video sequences in the stream (9 sequences; a change of
/// sequence forces an I-frame and a load jump).
pub const SEQUENCE_COUNT: usize = 9;

/// Target bitrate of the encoder (1.1 Mbit/s).
pub const TARGET_BITRATE_BITS_PER_S: u64 = 1_100_000;

/// Macroblocks per frame used for the cycle-accurate experiments.
///
/// The paper does not state the frame size; 1584 macroblocks (D1/PAL,
/// 704×576) makes the Fig. 5 per-macroblock averages reproduce the
/// encoding-time levels visible in Figs. 6–7 (constant q=3 ≈ 272 Mcycle,
/// q=4 ≈ 296 Mcycle against `P` = 320 Mcycle).
pub const MACROBLOCKS_PER_FRAME: usize = 1584;

/// The benchmark quality set `{0, ..., 7}`.
///
/// # Example
///
/// ```
/// use fgqos_time::fig5;
///
/// assert_eq!(fig5::quality_set().len(), 8);
/// ```
#[must_use]
pub fn quality_set() -> QualitySet {
    QualitySet::contiguous(0, QUALITY_LEVELS - 1).expect("0..=7 is non-empty")
}

/// `(average, worst-case)` cycles for action `name` at all 8 levels, or
/// `None` for unknown names. Quality-independent actions report constant
/// rows.
#[must_use]
pub fn times_for(name: &str) -> Option<[(u64, u64); 8]> {
    if name == names::MOTION_ESTIMATE {
        return Some(MOTION_ESTIMATE_TIMES);
    }
    FIXED_ACTION_TIMES
        .iter()
        .find(|&&(n, _, _)| n == name)
        .map(|&(_, avg, wc)| [(avg, wc); 8])
}

/// Builds the Fig. 5 [`QualityProfile`] for a body whose actions are given
/// by name in dense-id order.
///
/// # Errors
///
/// [`TimeError::MissingTimes`] if a name is not part of Fig. 5 (reported
/// with the dense index of the offending action).
///
/// # Example
///
/// ```
/// use fgqos_time::fig5::{self, names};
///
/// # fn main() -> Result<(), fgqos_time::TimeError> {
/// let p = fig5::body_profile(&[names::GRAB, names::MOTION_ESTIMATE])?;
/// assert_eq!(p.avg_idx(1, 3), fgqos_time::Cycles::new(95_000));
/// assert_eq!(p.worst_idx(0, 7), fgqos_time::Cycles::new(24_000));
/// # Ok(())
/// # }
/// ```
pub fn body_profile(action_names: &[&str]) -> Result<QualityProfile, TimeError> {
    let mut b = QualityProfile::builder(quality_set(), action_names.len());
    for (idx, name) in action_names.iter().enumerate() {
        let times = times_for(name).ok_or(TimeError::MissingTimes(idx))?;
        b.set_levels(idx, &times)?;
    }
    b.build()
}

/// Average cycles of one whole macroblock body at constant quality `q`
/// (all nine Fig. 2 actions).
///
/// # Panics
///
/// Panics if `q >= 8`.
#[must_use]
pub fn macroblock_avg_cycles(q: u8) -> u64 {
    let fixed: u64 = FIXED_ACTION_TIMES.iter().map(|&(_, avg, _)| avg).sum();
    fixed + MOTION_ESTIMATE_TIMES[q as usize].0
}

/// Worst-case cycles of one whole macroblock body at constant quality `q`.
///
/// # Panics
///
/// Panics if `q >= 8`.
#[must_use]
pub fn macroblock_worst_cycles(q: u8) -> u64 {
    let fixed: u64 = FIXED_ACTION_TIMES.iter().map(|&(_, _, wc)| wc).sum();
    fixed + MOTION_ESTIMATE_TIMES[q as usize].1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_monotone_and_consistent() {
        for w in MOTION_ESTIMATE_TIMES.windows(2) {
            assert!(w[0].0 <= w[1].0, "avg must be non-decreasing");
            assert!(w[0].1 <= w[1].1, "wc must be non-decreasing");
        }
        for &(name, avg, wc) in &FIXED_ACTION_TIMES {
            assert!(avg <= wc, "{name}: avg must not exceed wc");
        }
        for &(avg, wc) in &MOTION_ESTIMATE_TIMES {
            assert!(avg <= wc);
        }
    }

    #[test]
    fn fixed_action_sums_match_paper_arithmetic() {
        // Sum of averages of the eight quality-independent actions.
        let fixed_avg: u64 = FIXED_ACTION_TIMES.iter().map(|&(_, a, _)| a).sum();
        assert_eq!(fixed_avg, 77_000);
        // Whole body at q=3 averages 172k cycles; at D1 scale that is
        // ~272 Mcycle per frame against P = 320 Mcycle.
        assert_eq!(macroblock_avg_cycles(3), 172_000);
        assert_eq!(macroblock_avg_cycles(4), 187_000);
        // Worst case at q_min stays under the per-frame period.
        assert_eq!(macroblock_worst_cycles(0), 176_000);
        assert!(macroblock_worst_cycles(0) * MACROBLOCKS_PER_FRAME as u64 <= PERIOD_CYCLES);
        // ... while q=3's worst case does not (that is why static wc-based
        // scheduling is hopeless here).
        assert!(macroblock_worst_cycles(3) * MACROBLOCKS_PER_FRAME as u64 > PERIOD_CYCLES);
    }

    #[test]
    fn times_for_known_and_unknown_names() {
        assert!(times_for(names::MOTION_ESTIMATE).is_some());
        let grab = times_for(names::GRAB).unwrap();
        assert!(grab.iter().all(|&t| t == (12_000, 24_000)));
        assert!(times_for("Unknown_Action").is_none());
    }

    #[test]
    fn body_profile_reports_unknown_actions() {
        let err = body_profile(&[names::GRAB, "Nope"]).unwrap_err();
        assert_eq!(err, TimeError::MissingTimes(1));
    }

    #[test]
    fn body_profile_full_pipeline() {
        let all = [
            names::GRAB,
            names::MOTION_ESTIMATE,
            names::DCT,
            names::QUANTIZE,
            names::INTRA_PREDICT,
            names::COMPRESS,
            names::INVERSE_QUANTIZE,
            names::IDCT,
            names::RECONSTRUCT,
        ];
        let p = body_profile(&all).unwrap();
        assert_eq!(p.n_actions(), 9);
        assert_eq!(p.total_avg(3).get(), 172_000);
        assert_eq!(p.total_worst(0).get(), 176_000);
    }

    #[test]
    fn experiment_constants() {
        assert_eq!(PERIOD_CYCLES, 320_000_000);
        // 25 frames/s at 8 GHz.
        assert_eq!(CLOCK_HZ / PERIOD_CYCLES, 25);
        assert_eq!(FRAME_COUNT, 582);
        assert_eq!(SEQUENCE_COUNT, 9);
    }
}
