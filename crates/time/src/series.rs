//! Sequence algebra: the `σ̂` prefix-sum operator and feasibility margins.
//!
//! Definition 2.2 of the paper: a schedule `α` is feasible with respect to
//! execution times `C` and deadlines `D` iff `min(D(α) − Ĉ(α)) ≥ 0`, where
//! `σ̂(i) = Σ_{j≤i} σ(j)`.
//!
//! The [`LineEnvelope`]/[`EnvelopeBuilder`] pair at the bottom of this
//! module is the geometric core of the budget-parametric tables in
//! `fgqos-sched`. Because an online profile refresh only moves line
//! *intercepts* (slopes are schedule structure), the builder supports a
//! zero-allocation refresh cycle: [`EnvelopeBuilder::clear`] retains the
//! hull buffer and [`EnvelopeBuilder::snapshot_into`] re-hulls into an
//! existing envelope in O(hull size) without touching the heap once the
//! target buffers have warmed up.

use crate::{Cycles, Slack};

/// The `σ̂` operator: running prefix sums of a duration sequence.
///
/// # Example
///
/// ```
/// use fgqos_time::{Cycles, series::prefix_sums};
///
/// let c = [3u64, 4, 5].map(Cycles::new);
/// let hat = prefix_sums(&c);
/// assert_eq!(hat, vec![Cycles::new(3), Cycles::new(7), Cycles::new(12)]);
/// ```
#[must_use]
pub fn prefix_sums(durations: &[Cycles]) -> Vec<Cycles> {
    let mut acc = Cycles::ZERO;
    durations
        .iter()
        .map(|&c| {
            acc += c;
            acc
        })
        .collect()
}

/// `min(D(α) − Ĉ(α))`: the minimal margin of a schedule, as a signed
/// [`Slack`].
///
/// Returns [`Slack::INFINITY`] for the empty sequence (nothing to violate).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn min_slack(deadlines: &[Cycles], durations: &[Cycles]) -> Slack {
    assert_eq!(
        deadlines.len(),
        durations.len(),
        "deadline and duration sequences must align"
    );
    let mut acc = Cycles::ZERO;
    let mut worst = Slack::INFINITY;
    for (&d, &c) in deadlines.iter().zip(durations) {
        acc += c;
        worst = worst.min(d.slack_from(acc));
    }
    worst
}

/// Definition 2.2: whether the schedule respects every deadline under the
/// given execution times.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn is_feasible(deadlines: &[Cycles], durations: &[Cycles]) -> bool {
    min_slack(deadlines, durations).is_nonnegative()
}

/// Like [`min_slack`] but with the accumulation started at `offset` (the
/// time already consumed before the first listed action). Used for
/// suffix-feasibility checks from a controller state at elapsed time
/// `t = offset`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn min_slack_from(offset: Cycles, deadlines: &[Cycles], durations: &[Cycles]) -> Slack {
    assert_eq!(
        deadlines.len(),
        durations.len(),
        "deadline and duration sequences must align"
    );
    let mut acc = offset;
    let mut worst = Slack::INFINITY;
    for (&d, &c) in deadlines.iter().zip(durations) {
        acc += c;
        worst = worst.min(d.slack_from(acc));
    }
    worst
}

/// Suffix margin table: `out[i] = min_{j ≥ i} (D(j) − Σ_{k=i..=j} C(k))`.
///
/// `out[i]` is the largest elapsed time `t` at which the suffix starting at
/// position `i` can still begin and meet all its deadlines — exactly the
/// right-hand side of the `Qual_Const` predicates of Section 2.2. Computed
/// in one reverse sweep using
/// `out[i] = min(D(i), out[i+1]) − C(i)`.
///
/// Returns a table of length `n + 1` with `out[n] = +∞` (empty suffix).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn suffix_budgets(deadlines: &[Cycles], durations: &[Cycles]) -> Vec<Slack> {
    assert_eq!(
        deadlines.len(),
        durations.len(),
        "deadline and duration sequences must align"
    );
    let n = deadlines.len();
    let mut out = vec![Slack::INFINITY; n + 1];
    for i in (0..n).rev() {
        let d_i = if deadlines[i].is_infinite() {
            Slack::INFINITY
        } else {
            Slack::new(i128::from(deadlines[i].get()))
        };
        out[i] = d_i.min(out[i + 1]).minus(durations[i]);
    }
    out
}

/// Lower envelope of integer lines `y = m·x + c` over `x ≥ 0`.
///
/// The budget-parametric constraint tables of `fgqos-sched` express each
/// suffix budget as `min_j (m_j · b − c_j)` over the frame budget `b` —
/// a lower envelope of lines with integer slopes and intercepts. This
/// type precomputes that envelope once (exact integer comparisons, no
/// floats) and evaluates it per query in `O(log segments)`.
///
/// Queries are restricted to `x ≥ 0`; lines that are never minimal on
/// that domain are discarded at construction.
///
/// # Numeric range
///
/// Construction compares lines by cross-multiplication in `i128`: with
/// `S` the slope range and `C` the intercept magnitude bound, products
/// stay exact while `S · C < 2¹²⁶` — comfortably true for cycle-domain
/// tables (slopes are iteration counts, intercepts are scaled prefix
/// sums of execution times).
///
/// # Example
///
/// ```
/// use fgqos_time::series::LineEnvelope;
///
/// // y = 3x  and  y = x + 6: the steeper line wins until x = 3.
/// let env = LineEnvelope::lower(vec![(3, 0), (1, 6)]);
/// assert_eq!(env.eval(0), Some(0));
/// assert_eq!(env.eval(2), Some(6));
/// assert_eq!(env.eval(3), Some(9));
/// assert_eq!(env.eval(10), Some(16));
/// assert_eq!(env.segments(), 2);
/// assert_eq!(LineEnvelope::lower(vec![]).eval(7), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineEnvelope {
    /// Hull lines `(slope, intercept)` in coverage order for increasing
    /// `x` (slopes strictly decreasing).
    lines: Vec<(i128, i128)>,
    /// `starts[i]`: the smallest integer `x` at which `lines[i]` attains
    /// the envelope minimum (`starts[0] == 0`, strictly increasing in
    /// the real line, weakly increasing after integer rounding).
    starts: Vec<u128>,
}

impl LineEnvelope {
    /// Builds the lower envelope of `lines` (`(slope, intercept)` pairs)
    /// over `x ≥ 0`. Duplicate slopes keep the smallest intercept; an
    /// empty input yields the empty envelope (`eval` returns `None`,
    /// i.e. "+∞").
    #[must_use]
    pub fn lower(mut lines: Vec<(i128, i128)>) -> Self {
        // Coverage order for a minimum over x >= 0: steepest line first
        // (it can only win near x = 0), shallowest last (it wins as
        // x -> ∞). Ties on slope resolved by keeping the lowest line.
        lines.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        lines.dedup_by_key(|l| l.0);
        let mut b = EnvelopeBuilder::new();
        for (m, c) in lines {
            b.push_shallower(m, c);
        }
        b.snapshot()
    }

    /// Computes the segment switch points of a valid hull into `starts`
    /// (cleared first; existing capacity is reused). The builder now
    /// maintains starts incrementally; this batch form remains as the
    /// debug-build cross-check oracle in
    /// [`EnvelopeBuilder::snapshot_into`].
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn starts_of_hull(hull: &[(i128, i128)], starts: &mut Vec<u128>) {
        starts.clear();
        if !hull.is_empty() {
            starts.push(0u128);
        }
        for w in hull.windows(2) {
            let (m0, c0) = w[0];
            let (m1, c1) = w[1];
            // Smallest integer x with m1·x + c1 ≤ m0·x + c0, i.e.
            // x ≥ (c1 − c0)/(m0 − m1); both differences are positive by
            // hull construction, so this is a plain ceiling division.
            let num = c1 - c0;
            let den = m0 - m1;
            let x = (num + den - 1) / den;
            starts.push(u128::try_from(x).expect("hull switch points are non-negative"));
        }
    }

    /// Evaluates `min_j (m_j · x + c_j)` at `x`, or `None` for the empty
    /// envelope (the minimum over no lines, i.e. `+∞`).
    #[must_use]
    pub fn eval(&self, x: u64) -> Option<i128> {
        if self.lines.is_empty() {
            return None;
        }
        let idx = self.starts.partition_point(|&s| s <= u128::from(x)) - 1;
        let (m, c) = self.lines[idx];
        Some(m * i128::from(x) + c)
    }

    /// Number of envelope segments after construction.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.lines.len()
    }

    /// Whether the envelope contains no lines (evaluates to `+∞`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Approximate resident size in bytes (diagnostics).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.lines.len() * std::mem::size_of::<(i128, i128)>()
            + self.starts.len() * std::mem::size_of::<u128>()
    }
}

/// Incremental lower-envelope construction for lines arriving in
/// *non-increasing slope* order.
///
/// The budget-parametric tables need one envelope per suffix of a
/// deadline-class sequence; when the classes arrive shallowest-last
/// (every sequential schedule does), each suffix envelope is a prefix
/// run of the same monotone-hull algorithm, so a single builder with an
/// O(hull) [`EnvelopeBuilder::snapshot`] per step replaces a from-scratch
/// `O(k log k)` build per suffix.
///
/// # Example
///
/// ```
/// use fgqos_time::series::{EnvelopeBuilder, LineEnvelope};
///
/// let mut b = EnvelopeBuilder::new();
/// b.push_shallower(3, 0);
/// b.push_shallower(1, 6);
/// assert_eq!(b.snapshot(), LineEnvelope::lower(vec![(3, 0), (1, 6)]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnvelopeBuilder {
    hull: Vec<(i128, i128)>,
    /// Segment switch points aligned with `hull`, maintained under the
    /// same stack discipline: a line's start is fixed at push time (its
    /// predecessor can only change by popping the line itself first), so
    /// snapshots copy it instead of re-deriving it — one ceiling
    /// division per push instead of one per hull line per snapshot.
    starts: Vec<u128>,
}

impl EnvelopeBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        EnvelopeBuilder::default()
    }

    /// Adds a line whose slope is less than or equal to every slope
    /// pushed before (equal slopes keep the lower line). Amortized O(1).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the slope ordering contract is
    /// violated — the resulting envelope would be wrong.
    pub fn push_shallower(&mut self, m: i128, c: i128) {
        debug_assert!(
            self.hull.last().is_none_or(|&(mt, _)| m <= mt),
            "push_shallower requires non-increasing slopes"
        );
        if let Some(&(mt, ct)) = self.hull.last() {
            if mt == m {
                if ct <= c {
                    return; // existing equal-slope line is not above
                }
                self.hull.pop();
                self.starts.pop();
            }
        }
        loop {
            match self.hull.len() {
                0 => break,
                1 => {
                    // A steeper line with an intercept that is not
                    // smaller is never minimal on x >= 0.
                    if self.hull[0].1 >= c {
                        self.hull.pop();
                        self.starts.pop();
                    } else {
                        break;
                    }
                }
                _ => {
                    let (mu, cu) = self.hull[self.hull.len() - 2];
                    let (mt, ct) = self.hull[self.hull.len() - 1];
                    // The top line T is useless if the new line L
                    // overtakes U no later than T does:
                    //   (c_L − c_U)/(m_U − m_L) ≤ (c_T − c_U)/(m_U − m_T)
                    // cross-multiplied (both denominators positive).
                    if (c - cu) * (mu - mt) <= (ct - cu) * (mu - m) {
                        self.hull.pop();
                        self.starts.pop();
                    } else {
                        break;
                    }
                }
            }
        }
        // Same switch-point formula as `starts_of_hull`, applied to the
        // one new consecutive pair — the settled top of the stack is
        // exactly this line's final predecessor. Both differences are
        // positive by hull construction; when they fit in 64 bits the
        // ceiling division runs in hardware instead of the 128-bit
        // soft-division libcall (this is the refresh hot path).
        let start = match self.hull.last() {
            None => 0u128,
            Some(&(mt, ct)) => {
                let num = c - ct;
                let den = mt - m;
                if num < (1 << 63) && den < (1 << 63) {
                    u128::from((num as u64).div_ceil(den as u64))
                } else {
                    u128::try_from((num + den - 1) / den)
                        .expect("hull switch points are non-negative")
                }
            }
        };
        self.hull.push((m, c));
        self.starts.push(start);
    }

    /// The envelope over every line pushed so far. O(hull size).
    #[must_use]
    pub fn snapshot(&self) -> LineEnvelope {
        let mut out = LineEnvelope {
            lines: Vec::new(),
            starts: Vec::new(),
        };
        self.snapshot_into(&mut out);
        out
    }

    /// Writes the envelope over every line pushed so far into `out`,
    /// reusing its `lines`/`starts` buffers. O(hull size) buffer copies,
    /// allocation-free once `out` has capacity — the intercept-refresh
    /// fast path of the budget-parametric tables.
    pub fn snapshot_into(&self, out: &mut LineEnvelope) {
        out.lines.clear();
        out.lines.extend_from_slice(&self.hull);
        out.starts.clear();
        out.starts.extend_from_slice(&self.starts);
        #[cfg(debug_assertions)]
        {
            let mut check = Vec::new();
            LineEnvelope::starts_of_hull(&out.lines, &mut check);
            debug_assert_eq!(check, out.starts, "incremental starts diverged");
        }
    }

    /// Empties the builder for a fresh sequence of lines, retaining the
    /// buffers' capacity.
    pub fn clear(&mut self) {
        self.hull.clear();
        self.starts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_of_empty_is_empty() {
        assert!(prefix_sums(&[]).is_empty());
    }

    #[test]
    fn min_slack_basic() {
        let d = [10u64, 20].map(Cycles::new);
        let c = [4u64, 5].map(Cycles::new);
        // completions: 4, 9 -> slacks 6, 11 -> min 6
        assert_eq!(min_slack(&d, &c), Slack::new(6));
        assert!(is_feasible(&d, &c));
    }

    #[test]
    fn min_slack_detects_miss() {
        let d = [10u64, 12].map(Cycles::new);
        let c = [4u64, 9].map(Cycles::new);
        // completions: 4, 13 -> slacks 6, -1
        assert_eq!(min_slack(&d, &c), Slack::new(-1));
        assert!(!is_feasible(&d, &c));
    }

    #[test]
    fn infinite_deadlines_never_bind() {
        let d = [Cycles::INFINITY, Cycles::new(100)];
        let c = [Cycles::new(60), Cycles::new(30)];
        assert_eq!(min_slack(&d, &c), Slack::new(10));
    }

    #[test]
    fn empty_schedule_is_feasible() {
        assert_eq!(min_slack(&[], &[]), Slack::INFINITY);
        assert!(is_feasible(&[], &[]));
    }

    #[test]
    fn offset_shifts_all_completions() {
        let d = [10u64, 20].map(Cycles::new);
        let c = [4u64, 5].map(Cycles::new);
        assert_eq!(min_slack_from(Cycles::new(3), &d, &c), Slack::new(3));
        assert_eq!(min_slack_from(Cycles::new(7), &d, &c), Slack::new(-1));
    }

    #[test]
    fn suffix_budgets_match_direct_evaluation() {
        let d = [10u64, 20, 25].map(Cycles::new);
        let c = [4u64, 5, 6].map(Cycles::new);
        let table = suffix_budgets(&d, &c);
        // Direct: budget[i] = max t with min_slack_from(t, d[i..], c[i..]) >= 0
        for i in 0..3 {
            let b = table[i];
            let t_ok = Cycles::new(u64::try_from(b.get()).unwrap());
            assert!(
                min_slack_from(t_ok, &d[i..], &c[i..]).is_nonnegative(),
                "budget at {i} must admit itself"
            );
            let t_bad = Cycles::new(u64::try_from(b.get()).unwrap() + 1);
            assert!(
                !min_slack_from(t_bad, &d[i..], &c[i..]).is_nonnegative(),
                "budget at {i} must be tight"
            );
        }
        assert_eq!(table[3], Slack::INFINITY);
    }

    #[test]
    fn suffix_budgets_with_infinite_deadlines() {
        let d = [Cycles::INFINITY, Cycles::new(10)];
        let c = [Cycles::new(3), Cycles::new(4)];
        let table = suffix_budgets(&d, &c);
        assert_eq!(table[1], Slack::new(6));
        assert_eq!(table[0], Slack::new(3));
        let d = [Cycles::INFINITY, Cycles::INFINITY];
        let table = suffix_budgets(&d, &c);
        assert_eq!(table[0], Slack::INFINITY);
    }

    #[test]
    fn suffix_budget_can_be_negative() {
        let d = [Cycles::new(2)];
        let c = [Cycles::new(5)];
        let table = suffix_budgets(&d, &c);
        assert_eq!(table[0], Slack::new(-3));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = min_slack(&[Cycles::new(1)], &[]);
    }

    /// Brute-force minimum over the raw line set.
    fn direct_min(lines: &[(i128, i128)], x: u64) -> Option<i128> {
        lines.iter().map(|&(m, c)| m * i128::from(x) + c).min()
    }

    #[test]
    fn envelope_matches_direct_minimum() {
        let cases: Vec<Vec<(i128, i128)>> = vec![
            vec![],
            vec![(5, -3)],
            vec![(3, 0), (1, 6)],
            vec![(4, 0), (3, 1), (2, 10), (1, 100)],
            // Dominated and duplicate-slope lines.
            vec![(2, 5), (2, -1), (3, -1), (1, -2)],
            // Negative intercepts of mixed magnitude.
            vec![(7, -1000), (5, -900), (2, -10), (1, 0)],
            // Collinear-ish integer switch points.
            vec![(3, 0), (2, 2), (1, 4)],
        ];
        let xs = [0u64, 1, 2, 3, 5, 7, 100, 1_000_000, u64::MAX - 1];
        for lines in &cases {
            let env = LineEnvelope::lower(lines.clone());
            for &x in &xs {
                assert_eq!(
                    env.eval(x),
                    direct_min(lines, x),
                    "envelope disagrees with direct min for {lines:?} at x={x}"
                );
            }
        }
    }

    #[test]
    fn envelope_discards_useless_lines() {
        // (2, 5) is dominated by (2, -1); (10, 7) never wins on x >= 0.
        let env = LineEnvelope::lower(vec![(2, 5), (2, -1), (10, 7), (1, 0)]);
        assert!(env.segments() <= 2);
        assert!(!env.is_empty());
        assert!(env.memory_bytes() > 0);
    }

    #[test]
    fn snapshot_into_reuses_buffers_and_matches_snapshot() {
        let mut b = EnvelopeBuilder::new();
        let mut reused = LineEnvelope::lower(vec![]);
        for round in 0..3i128 {
            b.clear();
            // Intercepts move between rounds (the refresh scenario);
            // slopes stay fixed.
            for (m, c) in [(4, 0), (3, 1 + round), (2, 10 - round), (1, 100)] {
                b.push_shallower(m, c);
            }
            b.snapshot_into(&mut reused);
            assert_eq!(reused, b.snapshot(), "round {round}");
            for x in [0u64, 1, 3, 7, 1_000] {
                assert_eq!(reused.eval(x), b.snapshot().eval(x));
            }
        }
    }

    #[test]
    fn envelope_handles_huge_budgets_exactly() {
        // Slopes/intercepts shaped like per-iteration deadline terms at a
        // near-overflow budget: exact i128 evaluation, no wrapping.
        let n = 12i128;
        let lines: Vec<(i128, i128)> = (1..=n).map(|m| (m, -m * 1_000_000)).collect();
        let env = LineEnvelope::lower(lines.clone());
        for &x in &[u64::MAX / 2, u64::MAX / 2 + 3, u64::MAX - 1] {
            assert_eq!(env.eval(x), direct_min(&lines, x));
        }
    }
}
