//! Sequence algebra: the `σ̂` prefix-sum operator and feasibility margins.
//!
//! Definition 2.2 of the paper: a schedule `α` is feasible with respect to
//! execution times `C` and deadlines `D` iff `min(D(α) − Ĉ(α)) ≥ 0`, where
//! `σ̂(i) = Σ_{j≤i} σ(j)`.

use crate::{Cycles, Slack};

/// The `σ̂` operator: running prefix sums of a duration sequence.
///
/// # Example
///
/// ```
/// use fgqos_time::{Cycles, series::prefix_sums};
///
/// let c = [3u64, 4, 5].map(Cycles::new);
/// let hat = prefix_sums(&c);
/// assert_eq!(hat, vec![Cycles::new(3), Cycles::new(7), Cycles::new(12)]);
/// ```
#[must_use]
pub fn prefix_sums(durations: &[Cycles]) -> Vec<Cycles> {
    let mut acc = Cycles::ZERO;
    durations
        .iter()
        .map(|&c| {
            acc += c;
            acc
        })
        .collect()
}

/// `min(D(α) − Ĉ(α))`: the minimal margin of a schedule, as a signed
/// [`Slack`].
///
/// Returns [`Slack::INFINITY`] for the empty sequence (nothing to violate).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn min_slack(deadlines: &[Cycles], durations: &[Cycles]) -> Slack {
    assert_eq!(
        deadlines.len(),
        durations.len(),
        "deadline and duration sequences must align"
    );
    let mut acc = Cycles::ZERO;
    let mut worst = Slack::INFINITY;
    for (&d, &c) in deadlines.iter().zip(durations) {
        acc += c;
        worst = worst.min(d.slack_from(acc));
    }
    worst
}

/// Definition 2.2: whether the schedule respects every deadline under the
/// given execution times.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn is_feasible(deadlines: &[Cycles], durations: &[Cycles]) -> bool {
    min_slack(deadlines, durations).is_nonnegative()
}

/// Like [`min_slack`] but with the accumulation started at `offset` (the
/// time already consumed before the first listed action). Used for
/// suffix-feasibility checks from a controller state at elapsed time
/// `t = offset`.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn min_slack_from(offset: Cycles, deadlines: &[Cycles], durations: &[Cycles]) -> Slack {
    assert_eq!(
        deadlines.len(),
        durations.len(),
        "deadline and duration sequences must align"
    );
    let mut acc = offset;
    let mut worst = Slack::INFINITY;
    for (&d, &c) in deadlines.iter().zip(durations) {
        acc += c;
        worst = worst.min(d.slack_from(acc));
    }
    worst
}

/// Suffix margin table: `out[i] = min_{j ≥ i} (D(j) − Σ_{k=i..=j} C(k))`.
///
/// `out[i]` is the largest elapsed time `t` at which the suffix starting at
/// position `i` can still begin and meet all its deadlines — exactly the
/// right-hand side of the `Qual_Const` predicates of Section 2.2. Computed
/// in one reverse sweep using
/// `out[i] = min(D(i), out[i+1]) − C(i)`.
///
/// Returns a table of length `n + 1` with `out[n] = +∞` (empty suffix).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
#[must_use]
pub fn suffix_budgets(deadlines: &[Cycles], durations: &[Cycles]) -> Vec<Slack> {
    assert_eq!(
        deadlines.len(),
        durations.len(),
        "deadline and duration sequences must align"
    );
    let n = deadlines.len();
    let mut out = vec![Slack::INFINITY; n + 1];
    for i in (0..n).rev() {
        let d_i = if deadlines[i].is_infinite() {
            Slack::INFINITY
        } else {
            Slack::new(i128::from(deadlines[i].get()))
        };
        out[i] = d_i.min(out[i + 1]).minus(durations[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_of_empty_is_empty() {
        assert!(prefix_sums(&[]).is_empty());
    }

    #[test]
    fn min_slack_basic() {
        let d = [10u64, 20].map(Cycles::new);
        let c = [4u64, 5].map(Cycles::new);
        // completions: 4, 9 -> slacks 6, 11 -> min 6
        assert_eq!(min_slack(&d, &c), Slack::new(6));
        assert!(is_feasible(&d, &c));
    }

    #[test]
    fn min_slack_detects_miss() {
        let d = [10u64, 12].map(Cycles::new);
        let c = [4u64, 9].map(Cycles::new);
        // completions: 4, 13 -> slacks 6, -1
        assert_eq!(min_slack(&d, &c), Slack::new(-1));
        assert!(!is_feasible(&d, &c));
    }

    #[test]
    fn infinite_deadlines_never_bind() {
        let d = [Cycles::INFINITY, Cycles::new(100)];
        let c = [Cycles::new(60), Cycles::new(30)];
        assert_eq!(min_slack(&d, &c), Slack::new(10));
    }

    #[test]
    fn empty_schedule_is_feasible() {
        assert_eq!(min_slack(&[], &[]), Slack::INFINITY);
        assert!(is_feasible(&[], &[]));
    }

    #[test]
    fn offset_shifts_all_completions() {
        let d = [10u64, 20].map(Cycles::new);
        let c = [4u64, 5].map(Cycles::new);
        assert_eq!(min_slack_from(Cycles::new(3), &d, &c), Slack::new(3));
        assert_eq!(min_slack_from(Cycles::new(7), &d, &c), Slack::new(-1));
    }

    #[test]
    fn suffix_budgets_match_direct_evaluation() {
        let d = [10u64, 20, 25].map(Cycles::new);
        let c = [4u64, 5, 6].map(Cycles::new);
        let table = suffix_budgets(&d, &c);
        // Direct: budget[i] = max t with min_slack_from(t, d[i..], c[i..]) >= 0
        for i in 0..3 {
            let b = table[i];
            let t_ok = Cycles::new(u64::try_from(b.get()).unwrap());
            assert!(
                min_slack_from(t_ok, &d[i..], &c[i..]).is_nonnegative(),
                "budget at {i} must admit itself"
            );
            let t_bad = Cycles::new(u64::try_from(b.get()).unwrap() + 1);
            assert!(
                !min_slack_from(t_bad, &d[i..], &c[i..]).is_nonnegative(),
                "budget at {i} must be tight"
            );
        }
        assert_eq!(table[3], Slack::INFINITY);
    }

    #[test]
    fn suffix_budgets_with_infinite_deadlines() {
        let d = [Cycles::INFINITY, Cycles::new(10)];
        let c = [Cycles::new(3), Cycles::new(4)];
        let table = suffix_budgets(&d, &c);
        assert_eq!(table[1], Slack::new(6));
        assert_eq!(table[0], Slack::new(3));
        let d = [Cycles::INFINITY, Cycles::INFINITY];
        let table = suffix_budgets(&d, &c);
        assert_eq!(table[0], Slack::INFINITY);
    }

    #[test]
    fn suffix_budget_can_be_negative() {
        let d = [Cycles::new(2)];
        let c = [Cycles::new(5)];
        let table = suffix_budgets(&d, &c);
        assert_eq!(table[0], Slack::new(-3));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = min_slack(&[Cycles::new(1)], &[]);
    }
}
