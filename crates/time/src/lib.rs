//! Time domain, quality levels, execution-time profiles and deadlines.
//!
//! This crate implements the quantitative half of the model of Combaz,
//! Fernandez, Lepley and Sifakis, *"Fine Grain QoS Control for Multimedia
//! Application Software"* (DATE 2005):
//!
//! * [`Cycles`] — the time domain `R+ ∪ {+∞}` of Definition 2.1, measured
//!   in CPU cycles (the paper reads a cycle register on a simulated XiRisc);
//! * [`Quality`] / [`QualitySet`] — the finite set `Q` of quality levels of
//!   Definition 2.3;
//! * [`QualityProfile`] — the families `Cav_q ≤ Cwc_q` of average and
//!   worst-case execution-time functions, non-decreasing in `q`;
//! * [`DeadlineMap`] — the deadline functions `D_q`;
//! * [`series`] — the `σ̂` prefix-sum operator and the feasibility margin
//!   `min(D(α) − Ĉ(α))` of Definition 2.2;
//! * [`fig5`] — the paper's Figure 5 execution-time tables and the
//!   experimental constants of Section 3.
//!
//! # Example
//!
//! ```
//! use fgqos_time::{Cycles, QualitySet, QualityProfile};
//!
//! # fn main() -> Result<(), fgqos_time::TimeError> {
//! let q = QualitySet::contiguous(0, 2)?; // {0, 1, 2}
//! let mut b = QualityProfile::builder(q, 1);
//! b.set_levels(0, &[(100, 200), (150, 300), (200, 400)])?;
//! let profile = b.build()?;
//! assert_eq!(profile.avg_idx(0, 1), Cycles::new(150));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycles;
mod deadline;
mod error;
mod profile;
mod quality;

pub mod fig5;
pub mod series;

pub use cycles::{Cycles, Slack};
pub use deadline::DeadlineMap;
pub use error::{ActionIdx, TimeError};
pub use profile::{ActionTimes, ProfileBuilder, QualityProfile};
pub use quality::{Quality, QualitySet};
