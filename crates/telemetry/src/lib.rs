//! Observe-only telemetry plane for the fine-grain QoS workspace.
//!
//! The paper's controller is only as trustworthy as our visibility
//! into it. This crate unifies the workspace's scattered diagnostics
//! — quality switches, deadline slack, envelope rebuilds, admission
//! churn, pool utilization, output-plane lag — behind one
//! [`Telemetry`] registry with three properties:
//!
//! * **Allocation-free on the hot path.** Handles ([`Counter`],
//!   [`Gauge`], [`Histogram`]) are `Arc`s to fixed atomic storage;
//!   recording is an index computation plus relaxed atomic updates.
//!   Histograms are HDR-style log-linear arrays ([`histogram`]), not
//!   growable maps. Span capture ([`SpanRecorder`]) pushes into
//!   preallocated per-worker buffers and counts overflow instead of
//!   growing.
//! * **Observe-only, byte-identical off/on.** Nothing reads a metric
//!   to make a control decision, so enabling telemetry cannot change
//!   a `StreamResult`, an admission log or a safety verdict — the
//!   serve layer's integration tests enforce byte-identity at worker
//!   counts 1/2/8.
//! * **Deterministic where it can be, honest where it can't.** Every
//!   metric carries a [`Stability`] class: `Stable` metrics derive
//!   from the deterministic result series and must be identical
//!   across worker counts on virtual-clock runs (test-enforced via
//!   [`TelemetrySnapshot::stable_view`]); `Runtime` metrics (wall
//!   latencies, steals, parks, per-worker busy time) are explicitly
//!   host-dependent.
//!
//! Exports: [`TelemetrySnapshot::to_json`] is the versioned snapshot
//! consumed by `ServeReport::summary()`, `fgqos-tool telemetry` and
//! the CI perf artifacts; [`SpanRecorder::to_chrome_trace`] emits
//! Chrome `trace_events` JSON for `chrome://tracing` / Perfetto
//! wavefront visualization; [`json`] is the shared no-`serde` JSON
//! substrate the rest of the workspace builds artifacts with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod spans;

pub use histogram::{Histogram, HistogramData};
pub use registry::{Counter, Gauge, Stability, Telemetry};
pub use snapshot::{MetricValue, TelemetrySnapshot, SNAPSHOT_SCHEMA, SNAPSHOT_VERSION};
pub use spans::{SpanEvent, SpanRecorder, DEFAULT_SPAN_CAPACITY};
