//! The metrics registry and its cloneable recording handles.
//!
//! Registration (naming a metric, taking a handle) happens at setup
//! time and may allocate; **recording never does** — a handle is an
//! `Arc` to fixed atomic storage, and a disabled [`Telemetry`] hands
//! out inert handles whose record calls are a single branch. The same
//! name always resolves to the same storage, so N streams registering
//! `"sched.envelope_builds"` aggregate into one counter by
//! construction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{HistCore, Histogram};
use crate::snapshot::TelemetrySnapshot;
use crate::spans::SpanRecorder;

/// Determinism class of a metric, fixed at registration.
///
/// `Stable` metrics must be identical across worker counts on
/// `VirtualClock` runs (they derive from the deterministic result
/// series); `Runtime` metrics are host/timing-dependent (wall-clock
/// latencies, steal counts, per-worker busy time) and are excluded
/// from [`TelemetrySnapshot::stable_view`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Deterministic on virtual-clock runs.
    Stable,
    /// Best-effort, host- and schedule-dependent.
    Runtime,
}

/// Monotonic event counter handle.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cell {
            Some(_) => write!(f, "Counter({})", self.get()),
            None => f.write_str("Counter(disabled)"),
        }
    }
}

impl Counter {
    /// Count one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for an inert handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-written-level gauge handle.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cell {
            Some(_) => write!(f, "Gauge({})", self.get()),
            None => f.write_str("Gauge(disabled)"),
        }
    }
}

impl Gauge {
    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the level to at least `v` (high-water-mark semantics).
    #[inline]
    pub fn maximize(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current level (0 for an inert handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistCore>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

struct Registered {
    stability: Stability,
    slot: Slot,
}

struct Inner {
    metrics: Mutex<BTreeMap<String, Registered>>,
    spans: Mutex<SpanRecorder>,
}

/// The telemetry plane: a registry of named metrics plus an optional
/// span recorder, shared by every instrumented layer of one run.
///
/// `Telemetry` is observe-only by contract: nothing in the workspace
/// reads a metric to make a control decision, which is what makes the
/// enabled/disabled byte-identity guarantee hold by construction.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let n = inner.metrics.lock().map_or(0, |m| m.len());
                f.debug_struct("Telemetry")
                    .field("metrics", &n)
                    .finish_non_exhaustive()
            }
            None => f.write_str("Telemetry(disabled)"),
        }
    }
}

impl Telemetry {
    /// A live registry.
    #[must_use]
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                metrics: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(SpanRecorder::disabled()),
            })),
        }
    }

    /// An inert registry: every handle it hands out is a no-op and
    /// [`Telemetry::snapshot`] is empty.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// Whether this instance records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register (or re-attach to) a stable counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric
    /// type or stability class.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(Stability::Stable, name)
    }

    /// Register (or re-attach to) a runtime counter.
    #[must_use]
    pub fn runtime_counter(&self, name: &str) -> Counter {
        self.counter_with(Stability::Runtime, name)
    }

    fn counter_with(&self, stability: Stability, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let cell = inner.register(name, stability, || {
            Slot::Counter(Arc::new(AtomicU64::new(0)))
        });
        match cell {
            Slot::Counter(c) => Counter { cell: Some(c) },
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Register (or re-attach to) a stable gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(Stability::Stable, name)
    }

    /// Register (or re-attach to) a runtime gauge.
    #[must_use]
    pub fn runtime_gauge(&self, name: &str) -> Gauge {
        self.gauge_with(Stability::Runtime, name)
    }

    fn gauge_with(&self, stability: Stability, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let cell = inner.register(name, stability, || Slot::Gauge(Arc::new(AtomicU64::new(0))));
        match cell {
            Slot::Gauge(c) => Gauge { cell: Some(c) },
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Register (or re-attach to) a stable histogram.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(Stability::Stable, name)
    }

    /// Register (or re-attach to) a runtime histogram.
    #[must_use]
    pub fn runtime_histogram(&self, name: &str) -> Histogram {
        self.histogram_with(Stability::Runtime, name)
    }

    fn histogram_with(&self, stability: Stability, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram::disabled();
        };
        let cell = inner.register(name, stability, || {
            Slot::Histogram(Arc::new(HistCore::new()))
        });
        match cell {
            Slot::Histogram(c) => Histogram::from_core(c),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Install the span recorder for this run (typically created by
    /// the worker pool, which knows the lane count). Replaces any
    /// previous recorder.
    pub fn install_spans(&self, recorder: SpanRecorder) {
        if let Some(inner) = &self.inner {
            *inner.spans.lock().expect("span recorder poisoned") = recorder;
        }
    }

    /// A handle to the installed span recorder (inert if none, or if
    /// telemetry is disabled).
    #[must_use]
    pub fn spans(&self) -> SpanRecorder {
        self.inner
            .as_ref()
            .map_or_else(SpanRecorder::disabled, |i| {
                i.spans.lock().expect("span recorder poisoned").clone()
            })
    }

    /// Export every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        let Some(inner) = &self.inner else {
            return snap;
        };
        let metrics = inner.metrics.lock().expect("metrics registry poisoned");
        for (name, reg) in metrics.iter() {
            match &reg.slot {
                Slot::Counter(c) => {
                    snap.insert_counter(reg.stability, name, c.load(Ordering::Relaxed));
                }
                Slot::Gauge(c) => {
                    snap.insert_gauge(reg.stability, name, c.load(Ordering::Relaxed));
                }
                Slot::Histogram(h) => snap.insert_histogram(reg.stability, name, h.data()),
            }
        }
        snap
    }
}

impl Inner {
    fn register(&self, name: &str, stability: Stability, mk: impl FnOnce() -> Slot) -> Slot {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let reg = metrics
            .entry(name.to_string())
            .or_insert_with(|| Registered {
                stability,
                slot: mk(),
            });
        assert!(
            reg.stability == stability,
            "metric `{name}` re-registered with a different stability class"
        );
        match &reg.slot {
            Slot::Counter(c) => Slot::Counter(Arc::clone(c)),
            Slot::Gauge(c) => Slot::Gauge(Arc::clone(c)),
            Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_aggregates() {
        let t = Telemetry::new();
        let a = t.counter("x");
        let b = t.counter("x");
        a.add(3);
        b.add(4);
        assert_eq!(t.snapshot().counter("x"), Some(7));
    }

    #[test]
    fn disabled_registry_is_inert() {
        let t = Telemetry::disabled();
        let c = t.counter("x");
        c.incr();
        let g = t.gauge("g");
        g.set(9);
        let h = t.histogram("h");
        h.record(5);
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_empty());
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_semantics() {
        let t = Telemetry::new();
        let g = t.runtime_gauge("lvl");
        g.set(5);
        g.maximize(3);
        assert_eq!(g.get(), 5);
        g.maximize(11);
        assert_eq!(g.get(), 11);
        let snap = t.snapshot();
        assert_eq!(snap.gauge("lvl"), Some(11));
        assert!(snap.stable_view().is_empty(), "runtime gauge is excluded");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_collision_panics() {
        let t = Telemetry::new();
        let _c = t.counter("x");
        let _g = t.gauge("x");
    }

    #[test]
    fn snapshot_orders_by_name() {
        let t = Telemetry::new();
        t.counter("b").incr();
        t.counter("a").incr();
        let snap = t.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
