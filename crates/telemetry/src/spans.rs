//! Per-lane span capture with Chrome `trace_events` export.
//!
//! A [`SpanRecorder`] owns one preallocated buffer ("lane") per
//! worker thread plus one for the coordinating thread. Recording a
//! span is a lane-local `Mutex` lock (uncontended by construction —
//! each worker writes only its own lane) and a `Vec::push` within
//! reserved capacity, so the hot path never allocates; when a lane
//! fills up further spans are counted in [`SpanRecorder::dropped`]
//! instead of growing the buffer.
//!
//! The export format is the Chrome Trace Event JSON that
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly: complete (`"ph": "X"`) events with microsecond
//! timestamps relative to the recorder's creation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::JsonObj;

/// Default per-lane span capacity (≈ 2.5 MiB of spans per worker).
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

/// One recorded span: a named interval on a lane (worker thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// What ran (e.g. `"kernel"`, `"commit"`, `"tick"`).
    pub name: &'static str,
    /// Trace category (e.g. `"pool"`, `"serve"`).
    pub cat: &'static str,
    /// Lane = thread id in the exported trace.
    pub tid: u32,
    /// Start, nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

struct SpanInner {
    epoch: Instant,
    lanes: Vec<Mutex<Vec<SpanEvent>>>,
    dropped: AtomicU64,
}

/// Cloneable span-recording handle (inert when disabled).
#[derive(Clone, Default)]
pub struct SpanRecorder {
    inner: Option<Arc<SpanInner>>,
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("SpanRecorder")
                .field("lanes", &inner.lanes.len())
                .finish_non_exhaustive(),
            None => f.write_str("SpanRecorder(disabled)"),
        }
    }
}

impl SpanRecorder {
    /// A live recorder with `lanes` preallocated buffers of
    /// `capacity` spans each.
    #[must_use]
    pub fn new(lanes: usize, capacity: usize) -> Self {
        let epoch = Instant::now();
        SpanRecorder {
            inner: Some(Arc::new(SpanInner {
                epoch,
                lanes: (0..lanes.max(1))
                    .map(|_| Mutex::new(Vec::with_capacity(capacity)))
                    .collect(),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// An inert recorder: [`SpanRecorder::start`] returns `None` and
    /// nothing is captured.
    #[must_use]
    pub fn disabled() -> Self {
        SpanRecorder::default()
    }

    /// Whether spans are captured.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.lanes.len())
    }

    /// Begin a span: captures the clock only when enabled, so the
    /// disabled path costs one branch.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Finish a span begun with [`SpanRecorder::start`] and file it
    /// under `lane`. No-op when the recorder is disabled or `started`
    /// is `None`.
    #[inline]
    pub fn record(
        &self,
        lane: usize,
        name: &'static str,
        cat: &'static str,
        started: Option<Instant>,
    ) {
        let (Some(inner), Some(t0)) = (self.inner.as_deref(), started) else {
            return;
        };
        let dur_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let start_ns = t0
            .checked_duration_since(inner.epoch)
            .map_or(0, |d| d.as_nanos().min(u128::from(u64::MAX)) as u64);
        let lane = lane % inner.lanes.len();
        let mut buf = inner.lanes[lane].lock().expect("span lane poisoned");
        if buf.len() < buf.capacity() {
            buf.push(SpanEvent {
                name,
                cat,
                tid: lane as u32,
                start_ns,
                dur_ns,
            });
        } else {
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans dropped because a lane buffer filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Every captured span, ordered by `(tid, start)`.
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for lane in &inner.lanes {
            out.extend_from_slice(&lane.lock().expect("span lane poisoned"));
        }
        out.sort_by_key(|s| (s.tid, s.start_ns));
        out
    }

    /// Export as Chrome Trace Event JSON (open in `chrome://tracing`
    /// or Perfetto).
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let events = self
            .events()
            .into_iter()
            .map(|s| {
                JsonObj::new()
                    .str("name", s.name)
                    .str("cat", s.cat)
                    .str("ph", "X")
                    .fixed("ts", s.start_ns as f64 / 1e3, 3)
                    .fixed("dur", s.dur_ns as f64 / 1e3, 3)
                    .int("pid", 1)
                    .int("tid", u64::from(s.tid))
                    .build()
            })
            .collect();
        JsonObj::new()
            .arr("traceEvents", events)
            .str("displayTimeUnit", "ms")
            .build()
            .pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn records_spans_per_lane() {
        let rec = SpanRecorder::new(2, 8);
        let t0 = rec.start();
        rec.record(1, "kernel", "pool", t0);
        let t1 = rec.start();
        rec.record(0, "commit", "serve", t1);
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tid, 0);
        assert_eq!(events[0].name, "commit");
        assert_eq!(events[1].tid, 1);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn overflow_counts_drops_without_growing() {
        let rec = SpanRecorder::new(1, 2);
        for _ in 0..5 {
            let t = rec.start();
            rec.record(0, "k", "pool", t);
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = SpanRecorder::disabled();
        assert!(rec.start().is_none());
        rec.record(0, "k", "pool", None);
        assert!(rec.events().is_empty());
        assert_eq!(rec.lanes(), 0);
    }

    #[test]
    fn chrome_trace_shape() {
        let rec = SpanRecorder::new(1, 8);
        let t = rec.start();
        rec.record(0, "kernel", "pool", t);
        let trace = rec.to_chrome_trace();
        let doc = crate::json::parse(&trace).expect("valid json");
        let events = doc
            .as_obj()
            .and_then(|o| o.get("traceEvents"))
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), 1);
        let e = events[0].as_obj().expect("event object");
        assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert_eq!(e.get("name").and_then(JsonValue::as_str), Some("kernel"));
        assert_eq!(e.get("pid").and_then(JsonValue::as_int), Some(1));
    }
}
