//! Log-linear (HDR-style) histograms with fixed storage and atomic,
//! allocation-free recording.
//!
//! Values `0..=15` get exact single-value buckets; every larger
//! power-of-two range `[2^k, 2^(k+1))` is split into [`SUB_BUCKETS`]
//! equal sub-ranges, so relative error is bounded at 12.5% across the
//! full `u64` range while the storage stays a fixed [`BUCKETS`]-slot
//! array. Recording is one index computation plus five relaxed atomic
//! updates — no heap allocation, no locks — which is what lets the
//! serve layer keep a histogram on the per-frame hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Values strictly below this cutoff get exact single-value buckets.
pub const LINEAR_CUTOFF: u64 = 16;
/// Sub-buckets per power-of-two range above the linear cutoff.
pub const SUB_BUCKETS: usize = 8;
/// Total bucket count: 16 exact buckets plus [`SUB_BUCKETS`] per
/// power-of-two range for exponents 4..=63.
pub const BUCKETS: usize = LINEAR_CUTOFF as usize + SUB_BUCKETS * 60;

/// Bucket index of a recorded value. Total over `u64`.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_CUTOFF {
        v as usize
    } else {
        let k = 63 - v.leading_zeros() as usize; // k >= 4
        let sub = ((v >> (k - 3)) & 7) as usize;
        LINEAR_CUTOFF as usize + (k - 4) * SUB_BUCKETS + sub
    }
}

/// Inclusive `(low, high)` value bounds of a bucket index.
///
/// # Panics
/// Panics if `idx >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index {idx} out of range");
    if idx < LINEAR_CUTOFF as usize {
        return (idx as u64, idx as u64);
    }
    let off = idx - LINEAR_CUTOFF as usize;
    let k = off / SUB_BUCKETS + 4;
    let sub = (off % SUB_BUCKETS) as u64;
    let width = 1u64 << (k - 3);
    let low = (1u64 << k) + sub * width;
    (low, low + (width - 1))
}

/// The fixed atomic storage behind a [`Histogram`] handle.
pub(crate) struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Wrapping sum of recorded values (callers record bounded
    /// quantities; a wrap needs > 2^64 total which no run reaches).
    sum: AtomicU64,
    /// `u64::MAX` while empty.
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> Self {
        HistCore {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn data(&self) -> HistogramData {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (idx, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((idx as u32, n));
            }
        }
        HistogramData {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Cloneable recording handle. A disabled handle (the [`Default`])
/// makes every [`Histogram::record`] a no-op branch.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistCore>>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            Some(core) => f
                .debug_struct("Histogram")
                .field("count", &core.data().count())
                .finish_non_exhaustive(),
            None => f.write_str("Histogram(disabled)"),
        }
    }
}

impl Histogram {
    /// A live histogram not attached to any registry (used by the
    /// output plane's per-ring lag tracking, which is always on).
    #[must_use]
    pub fn standalone() -> Self {
        Histogram {
            core: Some(Arc::new(HistCore::new())),
        }
    }

    /// An inert handle: records are dropped, [`Histogram::data`] is empty.
    #[must_use]
    pub fn disabled() -> Self {
        Histogram::default()
    }

    pub(crate) fn from_core(core: Arc<HistCore>) -> Self {
        Histogram { core: Some(core) }
    }

    /// Whether records are retained.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Record one observation. Allocation-free; relaxed atomics only.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.record(v);
        }
    }

    /// An owned, mergeable copy of the current contents.
    #[must_use]
    pub fn data(&self) -> HistogramData {
        self.core
            .as_ref()
            .map_or_else(HistogramData::default, |c| c.data())
    }
}

/// Owned histogram contents: plain data, comparable and mergeable.
///
/// The bucket list is sparse (only non-empty buckets), sorted by
/// bucket index, which makes equality a byte comparison and
/// [`HistogramData::merge`] associative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramData {
    count: u64,
    sum: u64,
    /// 0 when empty.
    min: u64,
    max: u64,
    /// `(bucket index, count)`, sorted by index, counts > 0.
    buckets: Vec<(u32, u64)>,
}

impl HistogramData {
    /// Rebuild from raw parts (the JSON parser's entry point).
    ///
    /// # Errors
    /// Rejects unsorted/duplicate/out-of-range buckets, zero counts,
    /// and a total that disagrees with `count`.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: Vec<(u32, u64)>,
    ) -> Result<Self, String> {
        let mut total = 0u64;
        let mut prev: Option<u32> = None;
        for &(idx, n) in &buckets {
            if idx as usize >= BUCKETS {
                return Err(format!("bucket index {idx} out of range"));
            }
            if n == 0 {
                return Err(format!("bucket {idx} has zero count"));
            }
            if prev.is_some_and(|p| p >= idx) {
                return Err("bucket indices not strictly increasing".into());
            }
            prev = Some(idx);
            total = total
                .checked_add(n)
                .ok_or_else(|| "bucket counts overflow".to_string())?;
        }
        if total != count {
            return Err(format!("bucket total {total} != count {count}"));
        }
        Ok(HistogramData {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of observed values (wrapping).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest observed value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of observed values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(low, high, count)` with inclusive value
    /// bounds, in increasing value order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().map(|&(idx, n)| {
            let (lo, hi) = bucket_bounds(idx as usize);
            (lo, hi, n)
        })
    }

    /// Record into owned (non-atomic) storage — the single-threaded
    /// twin of [`Histogram::record`], used by tests and by callers
    /// folding already-collected values.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v) as u32;
        match self.buckets.binary_search_by_key(&idx, |b| b.0) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (idx, 1)),
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Fold `other` into `self`. Associative and commutative; bucket
    /// counts, `count` and `sum` are conserved exactly.
    pub fn merge(&mut self, other: &HistogramData) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() && j < other.buckets.len() {
            let (ai, an) = self.buckets[i];
            let (bi, bn) = other.buckets[j];
            match ai.cmp(&bi) {
                std::cmp::Ordering::Less => {
                    merged.push((ai, an));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((bi, bn));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ai, an + bn));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.buckets[i..]);
        merged.extend_from_slice(&other.buckets[j..]);
        self.buckets = merged;
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (clamped to the observed `[min, max]`; 0 when empty).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(idx, n) in &self.buckets {
            cum += n;
            if cum >= target {
                let (_, hi) = bucket_bounds(idx as usize);
                return hi.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Total of the per-bucket counts (always equals [`Self::count`]).
    #[must_use]
    pub fn total_bucket_count(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_cutoff() {
        for v in 0..LINEAR_CUTOFF {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bounds_roundtrip_all_buckets() {
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), idx, "low bound of {idx}");
            assert_eq!(bucket_index(hi), idx, "high bound of {idx}");
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_ranges_are_contiguous() {
        for idx in 1..BUCKETS {
            let (_, prev_hi) = bucket_bounds(idx - 1);
            let (lo, _) = bucket_bounds(idx);
            assert_eq!(lo, prev_hi + 1, "gap before bucket {idx}");
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::standalone();
        for v in 1..=100u64 {
            h.record(v);
        }
        let d = h.data();
        assert_eq!(d.count(), 100);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 100);
        assert_eq!(d.sum(), 5050);
        assert_eq!(d.total_bucket_count(), 100);
        // Log-linear resolution: quantiles land within a bucket width.
        let p50 = d.quantile(0.5);
        assert!((50..=55).contains(&p50), "p50 = {p50}");
        assert_eq!(d.quantile(1.0), 100);
        assert_eq!(d.quantile(0.0), 1);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let d = Histogram::standalone().data();
        assert_eq!(d.count(), 0);
        assert_eq!(d.min(), 0);
        assert_eq!(d.max(), 0);
        assert_eq!(d.quantile(0.5), 0);
        assert_eq!(d, HistogramData::default());
    }

    #[test]
    fn disabled_handle_drops_records() {
        let h = Histogram::disabled();
        h.record(7);
        assert!(!h.is_enabled());
        assert_eq!(h.data().count(), 0);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = HistogramData::default();
        let mut b = HistogramData::default();
        let mut both = HistogramData::default();
        for v in [0u64, 3, 17, 17, 900, u64::MAX] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 17, 40_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = HistogramData::default();
        a.record(5);
        let orig = a.clone();
        a.merge(&HistogramData::default());
        assert_eq!(a, orig);
        let mut e = HistogramData::default();
        e.merge(&orig);
        assert_eq!(e, orig);
    }

    #[test]
    fn from_parts_validates() {
        assert!(HistogramData::from_parts(1, 5, 5, 5, vec![(bucket_index(5) as u32, 1)]).is_ok());
        assert!(
            HistogramData::from_parts(2, 5, 5, 5, vec![(5, 1)]).is_err(),
            "total mismatch"
        );
        assert!(HistogramData::from_parts(1, 5, 5, 5, vec![(u32::MAX, 1)]).is_err());
        assert!(HistogramData::from_parts(2, 0, 0, 0, vec![(3, 1), (3, 1)]).is_err());
    }
}
