//! Minimal JSON tree: an order-preserving builder/writer and a strict
//! recursive-descent parser.
//!
//! The workspace is dependency-free by design (no `serde`), yet the
//! telemetry plane needs machine-readable exports *and* a way to read
//! them back (`fgqos-tool telemetry` diffs two snapshot files). This
//! module is the shared substrate: snapshots, Chrome traces and the
//! `BENCH_*.json` perf artifacts are all emitted through [`JsonValue`]
//! instead of hand-rolled `format!` strings.

/// A JSON document node.
///
/// Integers keep full `u64` precision (a counter does not fit `f64`);
/// [`JsonValue::Fixed`] renders a float with a fixed decimal count for
/// stable, readable perf artifacts.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer, full precision.
    Int(u64),
    /// Float, shortest-roundtrip rendering.
    Float(f64),
    /// Float rendered with exactly `.1` decimals.
    Fixed(f64, u8),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object with preserved key order.
    Obj(JsonObj),
}

impl JsonValue {
    /// The integer value, if this node is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<u64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this node is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this node is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this node is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&JsonObj> {
        match self {
            JsonValue::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render pretty-printed with two-space indentation and a trailing
    /// newline (the house style of the `BENCH_*.json` artifacts).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::Float(f) => write_float(out, *f),
            JsonValue::Fixed(f, p) => {
                if f.is_finite() {
                    out.push_str(&format!("{f:.prec$}", prec = *p as usize));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Obj(obj) => {
                if obj.entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in obj.entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // `1.0f64.to_string()` is "1": still valid JSON number.
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An object with insertion-ordered keys and a chaining builder API.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObj {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObj {
    /// Empty object.
    #[must_use]
    pub fn new() -> Self {
        JsonObj::default()
    }

    /// Append (or replace) a key.
    #[must_use]
    pub fn set(mut self, key: &str, value: JsonValue) -> Self {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            self.entries.push((key.to_string(), value));
        }
        self
    }

    /// Append a string field.
    #[must_use]
    pub fn str(self, key: &str, value: &str) -> Self {
        self.set(key, JsonValue::Str(value.to_string()))
    }

    /// Append an integer field.
    #[must_use]
    pub fn int(self, key: &str, value: u64) -> Self {
        self.set(key, JsonValue::Int(value))
    }

    /// Append a fixed-precision float field.
    #[must_use]
    pub fn fixed(self, key: &str, value: f64, decimals: u8) -> Self {
        self.set(key, JsonValue::Fixed(value, decimals))
    }

    /// Append a boolean field.
    #[must_use]
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.set(key, JsonValue::Bool(value))
    }

    /// Append a nested object field.
    #[must_use]
    pub fn obj(self, key: &str, value: JsonObj) -> Self {
        self.set(key, JsonValue::Obj(value))
    }

    /// Append an array field.
    #[must_use]
    pub fn arr(self, key: &str, items: Vec<JsonValue>) -> Self {
        self.set(key, JsonValue::Arr(items))
    }

    /// Wrap into a [`JsonValue`].
    #[must_use]
    pub fn build(self) -> JsonValue {
        JsonValue::Obj(self)
    }

    /// Look up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Key/value pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &JsonValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parse a JSON document.
///
/// # Errors
/// Returns a message with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            float = true; // telemetry never emits negative ints
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Int(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then decode it as UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by this
                            // workspace; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("unpaired surrogate \\u{code:04x}"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut obj = JsonObj::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            obj = obj.set(&key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(obj));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let doc = JsonObj::new()
            .str("name", "a \"quoted\"\npath\\x")
            .int("count", u64::MAX)
            .fixed("ratio", 1.5, 3)
            .bool("ok", true)
            .set("nothing", JsonValue::Null)
            .arr(
                "items",
                vec![
                    JsonValue::Int(1),
                    JsonValue::Float(2.5),
                    JsonValue::Arr(vec![]),
                ],
            )
            .obj("nested", JsonObj::new().int("x", 7))
            .build();
        for text in [doc.compact(), doc.pretty()] {
            let back = parse(&text).expect("parse");
            let obj = back.as_obj().expect("obj");
            assert_eq!(obj.get("count").and_then(JsonValue::as_int), Some(u64::MAX));
            assert_eq!(
                obj.get("name").and_then(JsonValue::as_str),
                Some("a \"quoted\"\npath\\x")
            );
            assert_eq!(obj.get("ratio"), Some(&JsonValue::Float(1.5)));
            assert_eq!(obj.get("nothing"), Some(&JsonValue::Null));
            assert_eq!(
                obj.get("items").and_then(JsonValue::as_arr).map(<[_]>::len),
                Some(3)
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01x").is_err());
    }

    #[test]
    fn integer_precision_preserved() {
        let v = parse(&u64::MAX.to_string()).expect("parse");
        assert_eq!(v, JsonValue::Int(u64::MAX));
        assert_eq!(parse("-3").expect("parse"), JsonValue::Float(-3.0));
    }

    #[test]
    fn set_replaces_existing_key() {
        let o = JsonObj::new().int("a", 1).int("a", 2);
        assert_eq!(o.get("a"), Some(&JsonValue::Int(2)));
        assert_eq!(o.len(), 1);
    }
}
