//! Versioned, comparable snapshots of the metrics registry.
//!
//! A [`TelemetrySnapshot`] is plain data: two ordered name → value
//! maps, one for **stable** metrics (deterministic on `VirtualClock`
//! runs — identical across worker counts and telemetry on/off) and
//! one for **runtime** metrics (wall-clock timings, steal/park counts
//! and other host-dependent observations). The split is what makes
//! the determinism contract testable: `stable_view()` of two runs at
//! different worker counts must compare equal, while the runtime
//! section is explicitly best-effort.
//!
//! The JSON schema (`schema` / `version` header, then one object per
//! metric) is parsed back by [`TelemetrySnapshot::from_json`], which
//! is what `fgqos-tool telemetry` uses to pretty-print and diff
//! snapshot files.

use std::collections::BTreeMap;

use crate::histogram::{bucket_index, HistogramData};
use crate::json::{self, JsonObj, JsonValue};
use crate::registry::Stability;

/// Schema identifier embedded in every exported snapshot.
pub const SNAPSHOT_SCHEMA: &str = "fgqos-telemetry-snapshot";
/// Current snapshot schema version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One exported metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Last-written (or maximized) level.
    Gauge(u64),
    /// Log-bucketed value distribution.
    Histogram(HistogramData),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time export of every registered metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    stable: BTreeMap<String, MetricValue>,
    runtime: BTreeMap<String, MetricValue>,
}

impl TelemetrySnapshot {
    /// An empty snapshot at the current schema version.
    #[must_use]
    pub fn new() -> Self {
        TelemetrySnapshot::default()
    }

    /// Insert (or overwrite) a counter.
    pub fn insert_counter(&mut self, stability: Stability, name: &str, value: u64) {
        self.section_mut(stability)
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Insert (or overwrite) a gauge.
    pub fn insert_gauge(&mut self, stability: Stability, name: &str, value: u64) {
        self.section_mut(stability)
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Insert (or overwrite) a histogram.
    pub fn insert_histogram(&mut self, stability: Stability, name: &str, value: HistogramData) {
        self.section_mut(stability)
            .insert(name.to_string(), MetricValue::Histogram(value));
    }

    fn section_mut(&mut self, stability: Stability) -> &mut BTreeMap<String, MetricValue> {
        match stability {
            Stability::Stable => &mut self.stable,
            Stability::Runtime => &mut self.runtime,
        }
    }

    /// Look up a metric by name (stable section first).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.stable.get(name).or_else(|| self.runtime.get(name))
    }

    /// Counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(n) => Some(*n),
            _ => None,
        }
    }

    /// Gauge value by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Gauge(n) => Some(*n),
            _ => None,
        }
    }

    /// Histogram contents by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramData> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Every metric as `(name, stability, value)`, stable section
    /// first, names sorted within each section.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Stability, &MetricValue)> {
        self.stable
            .iter()
            .map(|(k, v)| (k.as_str(), Stability::Stable, v))
            .chain(
                self.runtime
                    .iter()
                    .map(|(k, v)| (k.as_str(), Stability::Runtime, v)),
            )
    }

    /// Number of metrics across both sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stable.len() + self.runtime.len()
    }

    /// Whether the snapshot holds no metrics.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stable.is_empty() && self.runtime.is_empty()
    }

    /// The deterministic subset: this is what the cross-worker-count
    /// equality contract is asserted on.
    #[must_use]
    pub fn stable_view(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stable: self.stable.clone(),
            runtime: BTreeMap::new(),
        }
    }

    /// Export as versioned, pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn section(map: &BTreeMap<String, MetricValue>) -> JsonObj {
            let mut obj = JsonObj::new();
            for (name, value) in map {
                let entry = match value {
                    MetricValue::Counter(n) => {
                        JsonObj::new().str("type", "counter").int("value", *n)
                    }
                    MetricValue::Gauge(n) => JsonObj::new().str("type", "gauge").int("value", *n),
                    MetricValue::Histogram(h) => JsonObj::new()
                        .str("type", "histogram")
                        .int("count", h.count())
                        .int("sum", h.sum())
                        .int("min", h.min())
                        .int("max", h.max())
                        .arr(
                            "buckets",
                            h.buckets()
                                .map(|(lo, hi, n)| {
                                    JsonValue::Arr(vec![
                                        JsonValue::Int(lo),
                                        JsonValue::Int(hi),
                                        JsonValue::Int(n),
                                    ])
                                })
                                .collect(),
                        ),
                };
                obj = obj.obj(name, entry);
            }
            obj
        }
        JsonObj::new()
            .str("schema", SNAPSHOT_SCHEMA)
            .int("version", u64::from(SNAPSHOT_VERSION))
            .obj("stable", section(&self.stable))
            .obj("runtime", section(&self.runtime))
            .build()
            .pretty()
    }

    /// Parse a snapshot previously written by [`Self::to_json`].
    ///
    /// # Errors
    /// Rejects malformed JSON, wrong schema/version, unknown metric
    /// types and inconsistent histogram buckets.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let root = doc.as_obj().ok_or("snapshot root must be an object")?;
        match root.get("schema").and_then(JsonValue::as_str) {
            Some(SNAPSHOT_SCHEMA) => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        match root.get("version").and_then(JsonValue::as_int) {
            Some(v) if v == u64::from(SNAPSHOT_VERSION) => {}
            other => return Err(format!("unsupported snapshot version {other:?}")),
        }
        let mut snap = TelemetrySnapshot::new();
        for (key, stability) in [
            ("stable", Stability::Stable),
            ("runtime", Stability::Runtime),
        ] {
            let section = root
                .get(key)
                .and_then(JsonValue::as_obj)
                .ok_or_else(|| format!("missing `{key}` section"))?;
            for (name, entry) in section.iter() {
                let entry = entry
                    .as_obj()
                    .ok_or_else(|| format!("metric `{name}` must be an object"))?;
                let value = parse_metric(name, entry)?;
                snap.section_mut(stability).insert(name.to_string(), value);
            }
        }
        Ok(snap)
    }

    /// Human-readable listing of every metric.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "telemetry snapshot v{SNAPSHOT_VERSION} ({} stable, {} runtime)\n",
            self.stable.len(),
            self.runtime.len()
        );
        let width = self
            .iter()
            .map(|(name, _, _)| name.len())
            .max()
            .unwrap_or(0);
        for (title, map) in [("stable", &self.stable), ("runtime", &self.runtime)] {
            out.push_str(title);
            out.push_str(":\n");
            if map.is_empty() {
                out.push_str("  (none)\n");
            }
            for (name, value) in map {
                out.push_str(&format!("  {name:width$}  {}\n", describe(value)));
            }
        }
        out
    }

    /// Human-readable delta against an older snapshot: changed and
    /// added metrics with their movement, removed metrics flagged.
    #[must_use]
    pub fn diff(&self, baseline: &TelemetrySnapshot) -> String {
        let mut lines = Vec::new();
        let width = self
            .iter()
            .chain(baseline.iter())
            .map(|(name, _, _)| name.len())
            .max()
            .unwrap_or(0);
        for (name, _, value) in self.iter() {
            match baseline.get(name) {
                None => lines.push(format!("  {name:width$}  added    {}", describe(value))),
                Some(old) if old == value => {}
                Some(old) => lines.push(format!("  {name:width$}  {}", describe_delta(old, value))),
            }
        }
        for (name, _, old) in baseline.iter() {
            if self.get(name).is_none() {
                lines.push(format!("  {name:width$}  removed  (was {})", describe(old)));
            }
        }
        if lines.is_empty() {
            "no differences\n".to_string()
        } else {
            lines.join("\n") + "\n"
        }
    }
}

fn parse_metric(name: &str, entry: &JsonObj) -> Result<MetricValue, String> {
    let ty = entry
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("metric `{name}` missing type"))?;
    let int = |key: &str| {
        entry
            .get(key)
            .and_then(JsonValue::as_int)
            .ok_or_else(|| format!("metric `{name}` missing integer `{key}`"))
    };
    match ty {
        "counter" => Ok(MetricValue::Counter(int("value")?)),
        "gauge" => Ok(MetricValue::Gauge(int("value")?)),
        "histogram" => {
            let raw = entry
                .get("buckets")
                .and_then(JsonValue::as_arr)
                .ok_or_else(|| format!("metric `{name}` missing buckets"))?;
            let mut buckets = Vec::with_capacity(raw.len());
            for b in raw {
                let triple = b.as_arr().filter(|t| t.len() == 3).ok_or_else(|| {
                    format!("metric `{name}`: bucket must be a [low, high, count] triple")
                })?;
                let lo = triple[0]
                    .as_int()
                    .ok_or_else(|| format!("metric `{name}`: bad bucket low"))?;
                let hi = triple[1]
                    .as_int()
                    .ok_or_else(|| format!("metric `{name}`: bad bucket high"))?;
                let n = triple[2]
                    .as_int()
                    .ok_or_else(|| format!("metric `{name}`: bad bucket count"))?;
                let idx = bucket_index(lo);
                if crate::histogram::bucket_bounds(idx) != (lo, hi) {
                    return Err(format!(
                        "metric `{name}`: [{lo}, {hi}] is not a bucket boundary"
                    ));
                }
                buckets.push((idx as u32, n));
            }
            let data = HistogramData::from_parts(
                int("count")?,
                int("sum")?,
                int("min")?,
                int("max")?,
                buckets,
            )
            .map_err(|e| format!("metric `{name}`: {e}"))?;
            Ok(MetricValue::Histogram(data))
        }
        other => Err(format!("metric `{name}` has unknown type `{other}`")),
    }
}

fn describe(value: &MetricValue) -> String {
    match value {
        MetricValue::Counter(n) => format!("counter    {n}"),
        MetricValue::Gauge(n) => format!("gauge      {n}"),
        MetricValue::Histogram(h) => format!(
            "histogram  count={} mean={:.1} min={} p50={} p90={} p99={} max={}",
            h.count(),
            h.mean(),
            h.min(),
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
            h.max()
        ),
    }
}

fn describe_delta(old: &MetricValue, new: &MetricValue) -> String {
    match (old, new) {
        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
            format!("counter    {a} -> {b} ({:+})", *b as i128 - *a as i128)
        }
        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => format!("gauge      {a} -> {b}"),
        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => format!(
            "histogram  count {} -> {} ({:+}), p50 {} -> {}, max {} -> {}",
            a.count(),
            b.count(),
            b.count() as i128 - a.count() as i128,
            a.quantile(0.5),
            b.quantile(0.5),
            a.max(),
            b.max()
        ),
        (a, b) => format!("type changed: {} -> {}", a.type_name(), b.type_name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.insert_counter(Stability::Stable, "controller.frames", 96);
        s.insert_gauge(Stability::Stable, "distribute.max_lag", 7);
        let mut h = HistogramData::default();
        for v in [3u64, 17, 17, 900, 40_000] {
            h.record(v);
        }
        s.insert_histogram(Stability::Stable, "controller.slack", h);
        s.insert_counter(Stability::Runtime, "pool.steals", 12);
        s
    }

    #[test]
    fn json_roundtrip_is_identity() {
        let s = sample();
        let text = s.to_json();
        let back = TelemetrySnapshot::from_json(&text).expect("parse");
        assert_eq!(back, s);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn accessors_and_stable_view() {
        let s = sample();
        assert_eq!(s.counter("controller.frames"), Some(96));
        assert_eq!(s.gauge("distribute.max_lag"), Some(7));
        assert_eq!(
            s.histogram("controller.slack").map(HistogramData::count),
            Some(5)
        );
        assert_eq!(s.counter("pool.steals"), Some(12));
        let stable = s.stable_view();
        assert_eq!(stable.counter("pool.steals"), None);
        assert_eq!(stable.len(), 3);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        let wrong_version = sample()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(TelemetrySnapshot::from_json(&wrong_version).is_err());
        let bad_bucket = r#"{"schema":"fgqos-telemetry-snapshot","version":1,
            "stable":{"h":{"type":"histogram","count":1,"sum":5,"min":5,"max":5,
            "buckets":[[5,6,1]]}},"runtime":{}}"#;
        assert!(TelemetrySnapshot::from_json(bad_bucket).is_err());
    }

    #[test]
    fn render_and_diff_smoke() {
        let s = sample();
        let text = s.render();
        assert!(text.contains("controller.frames"));
        assert!(text.contains("histogram"));
        let mut newer = s.clone();
        newer.insert_counter(Stability::Stable, "controller.frames", 100);
        newer.insert_counter(Stability::Stable, "controller.skips", 1);
        let d = newer.diff(&s);
        assert!(d.contains("96 -> 100 (+4)"), "{d}");
        assert!(d.contains("added"), "{d}");
        assert_eq!(s.diff(&s), "no differences\n");
    }
}
