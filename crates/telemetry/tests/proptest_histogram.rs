//! Property tests for the log-linear histogram (the satellite
//! determinism contract of the telemetry plane):
//!
//! * **Merge is associative** (and agrees with recording the union of
//!   the value streams into one histogram), so folding per-ring or
//!   per-stream histograms into a snapshot is order-independent.
//! * **Bucket counts conserve the observation count** — no value is
//!   lost or double-counted by the bucketing, merging included.
//! * Every value lands in a bucket whose bounds contain it, and
//!   quantiles stay within the observed `[min, max]`.

use fgqos_telemetry::histogram::{bucket_bounds, bucket_index, HistogramData};
use proptest::prelude::*;

fn hist(values: &[u64]) -> HistogramData {
    let mut h = HistogramData::default();
    for &v in values {
        h.record(v);
    }
    h
}

/// Mixed-magnitude values: small exact-bucket values, mid-range, and
/// full-width u64 so the log tail is exercised.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..=u64::MAX).prop_map(|raw| {
            // Spread across magnitudes: use the low bits to pick a shift.
            let shift = (raw % 64) as u32;
            raw >> shift
        }),
        0..=64,
    )
}

proptest! {
    /// merge(h(a), h(b)) == h(a ++ b): merging histograms is the same
    /// as having recorded both streams into one.
    #[test]
    fn merge_agrees_with_union((a, b) in (arb_values(), arb_values())) {
        let mut merged = hist(&a);
        merged.merge(&hist(&b));
        let union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, hist(&union));
    }

    /// (a + b) + c == a + (b + c): snapshot folding is
    /// order-independent.
    #[test]
    fn merge_is_associative((a, b, c) in (arb_values(), arb_values(), arb_values())) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Bucket counts conserve the total observation count, before and
    /// after merging; the sum is conserved exactly (mod 2^64).
    #[test]
    fn bucket_counts_conserve_observations((a, b) in (arb_values(), arb_values())) {
        let ha = hist(&a);
        prop_assert_eq!(ha.count(), a.len() as u64);
        prop_assert_eq!(ha.total_bucket_count(), a.len() as u64);
        let expected_sum = a.iter().fold(0u64, |s, &v| s.wrapping_add(v));
        prop_assert_eq!(ha.sum(), expected_sum);
        let mut merged = ha;
        merged.merge(&hist(&b));
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.total_bucket_count(), merged.count());
    }

    /// Every value is inside its bucket's inclusive bounds.
    #[test]
    fn values_land_in_their_bucket(v in 0u64..=u64::MAX) {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        prop_assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
    }

    /// Quantiles are monotone in q and clamped to the observed range.
    #[test]
    fn quantiles_are_monotone_and_bounded(values in arb_values()) {
        prop_assume!(!values.is_empty());
        let h = hist(&values);
        let mut prev = h.quantile(0.0);
        for i in 1..=10 {
            let q = h.quantile(f64::from(i) / 10.0);
            prop_assert!(q >= prev);
            prop_assert!(q >= h.min() && q <= h.max());
            prev = q;
        }
        prop_assert_eq!(h.quantile(1.0), h.max());
    }
}
