//! Property tests: the budget-parametric tables are decision-equivalent
//! to freshly materialized `ConstraintTables` at *every* budget.
//!
//! For random (iterations, body, profile, schedule permutation, deadline
//! shape) instances and budgets spanning 0, ordinary values,
//! near-`u64::MAX` values and `+∞`, every [`TableQuery`] answer of
//! `BudgetTables::at_budget(b)` must equal the answer of
//! `ConstraintTables::new` built from `budget_deadlines(shape, …, b)` —
//! including the raw suffix-budget slacks, which subsume the `admits`
//! predicates.

use fgqos_graph::ActionId;
use fgqos_sched::{budget_deadlines, BudgetTables, ConstraintTables, DeadlineShape, TableQuery};
use fgqos_time::{Cycles, DeadlineMap, QualityProfile, QualitySet};
use proptest::prelude::*;

/// A random instance: iterations, body length, a (possibly non-uniform)
/// profile over the unrolled actions, and a random permutation of the
/// instance ids as the schedule.
#[derive(Debug, Clone)]
struct Instance {
    iterations: usize,
    body_len: usize,
    profile: QualityProfile,
    order: Vec<ActionId>,
    shape: DeadlineShape,
}

/// Builds a monotone profile from per-(action, quality) positive avg
/// increments and avg→worst gap increments.
fn profile_from_incs(n: usize, nq_hi: u8, avg_inc: &[u64], gap_inc: &[u64]) -> QualityProfile {
    let nq = usize::from(nq_hi) + 1;
    let qs = QualitySet::contiguous(0, nq_hi).unwrap();
    let mut pb = QualityProfile::builder(qs, n);
    for a in 0..n {
        let mut avg = 0u64;
        let mut gap = 0u64;
        let levels: Vec<(u64, u64)> = (0..nq)
            .map(|qi| {
                avg += avg_inc[a * nq + qi];
                gap += gap_inc[a * nq + qi];
                (avg, avg + gap)
            })
            .collect();
        pb.set_levels(a, &levels).unwrap();
    }
    pb.build().unwrap()
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        1usize..=4,
        1usize..=3,
        1u8..=3,
        proptest::bool::weighted(0.5),
    )
        .prop_flat_map(|(iterations, body_len, nq_hi, final_only)| {
            let n = iterations * body_len;
            let nq = usize::from(nq_hi) + 1;
            (
                Just((iterations, body_len, nq_hi, final_only)),
                // Per (action, quality): positive increments for avg and
                // the avg→worst gap; cumulative sums keep the profile
                // monotone in quality with avg ≤ worst by construction.
                proptest::collection::vec(1u64..5_000, n * nq),
                proptest::collection::vec(0u64..5_000, n * nq),
                // Schedule permutation: sort instance ids by random keys.
                proptest::collection::vec(proptest::strategy::any::<u64>(), n),
            )
        })
        .prop_map(
            |((iterations, body_len, nq_hi, final_only), avg_inc, gap_inc, keys)| {
                let n = iterations * body_len;
                let profile = profile_from_incs(n, nq_hi, &avg_inc, &gap_inc);
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by_key(|&i| (keys[i], i));
                let order: Vec<ActionId> = idx.into_iter().map(ActionId::from_index).collect();
                Instance {
                    iterations,
                    body_len,
                    profile,
                    order,
                    shape: if final_only {
                        DeadlineShape::FinalOnly
                    } else {
                        DeadlineShape::PerIteration
                    },
                }
            },
        )
}

/// An instance plus a sequence of refresh profiles with the same
/// dimensions but independently random values (both `avg` and `worst`
/// move — a superset of what an online estimator does).
fn arb_refresh_sequence() -> impl Strategy<Value = (Instance, Vec<QualityProfile>)> {
    (arb_instance(), 1usize..=3)
        .prop_flat_map(|(inst, rounds)| {
            let cells = inst.iterations * inst.body_len * inst.profile.qualities().len();
            (
                Just(inst),
                proptest::collection::vec(1u64..5_000, cells * rounds),
                proptest::collection::vec(0u64..5_000, cells * rounds),
            )
        })
        .prop_map(|(inst, avg_inc, gap_inc)| {
            let n = inst.iterations * inst.body_len;
            let nq = inst.profile.qualities().len();
            let nq_hi = u8::try_from(nq - 1).unwrap();
            let cells = n * nq;
            let profiles = (0..avg_inc.len() / cells)
                .map(|r| {
                    let span = r * cells..(r + 1) * cells;
                    profile_from_incs(n, nq_hi, &avg_inc[span.clone()], &gap_inc[span])
                })
                .collect();
            (inst, profiles)
        })
}

/// Budgets that must all agree: zero, small, mid-range, the overflow
/// frontier of the old `u64` deadline math, the largest finite value,
/// and `+∞`.
fn budget_grid(extra: u64) -> Vec<Cycles> {
    vec![
        Cycles::ZERO,
        Cycles::new(1),
        Cycles::new(extra % 1_000_000),
        Cycles::new(extra),
        Cycles::new(u64::MAX / 2 - 1),
        Cycles::new(u64::MAX / 2 + (extra % 97)),
        Cycles::new(u64::MAX - 1),
        Cycles::INFINITY,
    ]
}

fn reference_tables(inst: &Instance, budget: Cycles) -> ConstraintTables {
    let dm = DeadlineMap::uniform(
        inst.profile.qualities().clone(),
        budget_deadlines(inst.shape, inst.iterations, inst.body_len, budget),
    );
    ConstraintTables::new(inst.order.clone(), &inst.profile, &dm).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every raw suffix budget (av per quality, wcmin), deadline and
    /// worst-case entry agrees exactly — these primitives determine all
    /// derived predicates.
    #[test]
    fn primitives_agree_at_any_budget(inst in arb_instance(), extra in proptest::strategy::any::<u64>()) {
        let bt = BudgetTables::new(
            inst.order.clone(),
            &inst.profile,
            inst.shape,
            inst.iterations,
        ).unwrap();
        for budget in budget_grid(extra % (u64::MAX - 1)) {
            let ct = reference_tables(&inst, budget);
            let view = bt.at_budget(budget);
            prop_assert_eq!(view.len(), ct.len());
            prop_assert_eq!(view.order(), ct.order());
            for i in 0..=ct.len() {
                prop_assert_eq!(
                    view.wcmin_budget_at(i),
                    ct.wcmin_budget_at(i),
                    "wcmin i={} b={}", i, budget
                );
                for qi in 0..ct.quality_count() {
                    prop_assert_eq!(
                        view.av_budget_at(qi, i),
                        ct.av_budget_at(qi, i),
                        "av qi={} i={} b={}", qi, i, budget
                    );
                    if i < ct.len() {
                        prop_assert_eq!(view.deadline_at(qi, i), ct.deadline_at(qi, i));
                        prop_assert_eq!(view.worst_at(qi, i), ct.worst_at(qi, i));
                    }
                }
            }
        }
    }

    /// After any sequence of in-place refreshes, the tables answer every
    /// primitive exactly as a fresh build from the final profile — the
    /// estimator fast path can never drift from the from-scratch
    /// construction, whatever the schedule, shape, or refresh history.
    #[test]
    fn refresh_is_equivalent_to_a_fresh_build(
        (inst, refreshes) in arb_refresh_sequence(),
        extra in proptest::strategy::any::<u64>(),
    ) {
        let mut bt = BudgetTables::new(
            inst.order.clone(),
            &inst.profile,
            inst.shape,
            inst.iterations,
        ).unwrap();
        for profile in &refreshes {
            bt.refresh(profile).unwrap();
            let fresh = BudgetTables::new(
                inst.order.clone(),
                profile,
                inst.shape,
                inst.iterations,
            ).unwrap();
            for budget in budget_grid(extra % (u64::MAX - 1)) {
                let view = bt.at_budget(budget);
                let want = fresh.at_budget(budget);
                for i in 0..=fresh.len() {
                    prop_assert_eq!(
                        view.wcmin_budget_at(i),
                        want.wcmin_budget_at(i),
                        "wcmin i={} b={}", i, budget
                    );
                    for qi in 0..fresh.quality_count() {
                        prop_assert_eq!(
                            view.av_budget_at(qi, i),
                            want.av_budget_at(qi, i),
                            "av qi={} i={} b={}", qi, i, budget
                        );
                        if i < fresh.len() {
                            prop_assert_eq!(view.deadline_at(qi, i), want.deadline_at(qi, i));
                            prop_assert_eq!(view.worst_at(qi, i), want.worst_at(qi, i));
                        }
                        for t in [Cycles::ZERO, Cycles::new(extra % 10_000), Cycles::INFINITY] {
                            prop_assert_eq!(view.av_admits(qi, i, t), want.av_admits(qi, i, t));
                            prop_assert_eq!(view.wc_admits(qi, i, t), want.wc_admits(qi, i, t));
                        }
                    }
                }
            }
        }
    }

    /// The derived predicates and the `q_M` searches agree at sampled
    /// elapsed times, including boundary times read off the reference
    /// tables (the tight admit/reject frontier).
    #[test]
    fn decisions_agree_at_any_budget(inst in arb_instance(), extra in proptest::strategy::any::<u64>()) {
        let bt = BudgetTables::new(
            inst.order.clone(),
            &inst.profile,
            inst.shape,
            inst.iterations,
        ).unwrap();
        for budget in budget_grid(extra % (u64::MAX - 1)) {
            let ct = reference_tables(&inst, budget);
            let view = bt.at_budget(budget);
            for i in 0..=ct.len() {
                // Sample elapsed times at the av boundaries of every
                // quality plus fixed probes; Cycles::INFINITY probes the
                // degenerate "already hopeless" case.
                let mut ts = vec![Cycles::ZERO, Cycles::new(1), Cycles::new(10_000), Cycles::INFINITY];
                for qi in 0..ct.quality_count() {
                    let s = ct.av_budget_at(qi, i).get();
                    if let Ok(v) = u64::try_from(s) {
                        if v < u64::MAX {
                            ts.push(Cycles::new(v));
                            ts.push(Cycles::new(v.saturating_add(1).min(u64::MAX - 1)));
                        }
                    }
                }
                for t in ts {
                    for qi in 0..ct.quality_count() {
                        prop_assert_eq!(view.av_admits(qi, i, t), ct.av_admits(qi, i, t));
                        prop_assert_eq!(view.wc_admits(qi, i, t), ct.wc_admits(qi, i, t));
                        prop_assert_eq!(view.qual_const(qi, i, t), ct.qual_const(qi, i, t));
                    }
                    prop_assert_eq!(view.max_feasible(i, t), ct.max_feasible(i, t));
                    prop_assert_eq!(view.max_feasible_soft(i, t), ct.max_feasible_soft(i, t));
                }
            }
        }
    }
}
