//! Property tests: EDF optimality and table/definition agreement.

use fgqos_graph::{ActionId, GraphBuilder, PrecedenceGraph};
use fgqos_sched::{edf, feasible, ConstraintTables};
use fgqos_time::series;
use fgqos_time::{Cycles, DeadlineMap, QualityProfile, QualitySet, Slack};
use proptest::prelude::*;

fn arb_dag(max_nodes: usize) -> impl Strategy<Value = PrecedenceGraph> {
    (2..=max_nodes)
        .prop_flat_map(|n| {
            let pairs: Vec<(usize, usize)> = (0..n)
                .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
                .collect();
            (
                Just(n),
                proptest::collection::vec(proptest::bool::weighted(0.4), pairs.len()).prop_map(
                    move |mask| {
                        pairs
                            .iter()
                            .zip(mask)
                            .filter_map(|(&p, keep)| keep.then_some(p))
                            .collect::<Vec<_>>()
                    },
                ),
            )
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new();
            let ids: Vec<ActionId> = (0..n).map(|i| b.action(format!("n{i}"))).collect();
            for (i, j) in edges {
                b.edge(ids[i], ids[j]).unwrap();
            }
            b.build().unwrap()
        })
}

/// Random instance: graph + per-action duration and deadline tables.
fn arb_instance(
    max_nodes: usize,
) -> impl Strategy<Value = (PrecedenceGraph, Vec<Cycles>, Vec<Cycles>)> {
    arb_dag(max_nodes).prop_flat_map(|g| {
        let n = g.len();
        (
            Just(g),
            proptest::collection::vec(1u64..50, n),
            proptest::collection::vec(1u64..400, n),
        )
            .prop_map(|(g, durs, dls)| {
                let durations: Vec<Cycles> = durs.into_iter().map(Cycles::new).collect();
                let deadlines: Vec<Cycles> = dls.into_iter().map(Cycles::new).collect();
                (g, durations, deadlines)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Chetto+EDF is optimal: it finds a feasible order exactly when some
    /// linear extension is feasible.
    #[test]
    fn edf_is_optimal_on_small_instances((g, durations, deadlines) in arb_instance(6)) {
        let (edf_ok, any_ok) =
            feasible::edf_vs_exhaustive(&g, &deadlines, &durations, 2000).unwrap();
        prop_assert_eq!(edf_ok, any_ok);
    }

    /// The EDF order is always a valid schedule, regardless of feasibility.
    #[test]
    fn edf_order_is_always_a_schedule((g, durations, deadlines) in arb_instance(10)) {
        let order = edf::edf_order_chetto(&g, &deadlines, &durations, &[]).unwrap();
        g.validate_schedule(&order).unwrap();
    }

    /// Chetto modification never loosens a deadline and never changes
    /// feasibility of a *given* order.
    #[test]
    fn chetto_tightens_without_breaking_feasibility(
        (g, durations, deadlines) in arb_instance(8)
    ) {
        let modified = edf::chetto_deadlines(&g, &deadlines, &durations).unwrap();
        for a in g.ids() {
            prop_assert!(modified[a.index()] <= deadlines[a.index()]);
        }
        // For any valid schedule, feasibility wrt original deadlines equals
        // feasibility wrt modified deadlines (classic Chetto property).
        let order = g.topological_order().to_vec();
        let orig = feasible::is_schedule_feasible(&order, &deadlines, &durations);
        let modif = feasible::is_schedule_feasible(&order, &modified, &durations);
        // modified feasible => original feasible always (deadlines tighter).
        if modif {
            prop_assert!(orig);
        }
    }
}

/// Direct (definition-level) evaluation of `Qual_Constav`.
fn av_direct(
    order: &[ActionId],
    profile: &QualityProfile,
    deadlines: &DeadlineMap,
    q: fgqos_time::Quality,
    i: usize,
    t: Cycles,
) -> bool {
    let d: Vec<Cycles> = order[i..]
        .iter()
        .map(|a| deadlines.deadline(*a, q))
        .collect();
    let c: Vec<Cycles> = order[i..].iter().map(|a| profile.avg(*a, q)).collect();
    series::min_slack_from(t, &d, &c).is_nonnegative()
}

/// Direct (definition-level) evaluation of `Qual_Constwc` with the θ'
/// assignment (next action at `q`, the rest at `q_min`).
fn wc_direct(
    order: &[ActionId],
    profile: &QualityProfile,
    deadlines: &DeadlineMap,
    q: fgqos_time::Quality,
    i: usize,
    t: Cycles,
) -> bool {
    let qmin = profile.qualities().min();
    let mut d = Vec::new();
    let mut c = Vec::new();
    for (k, a) in order[i..].iter().enumerate() {
        let level = if k == 0 { q } else { qmin };
        d.push(deadlines.deadline(*a, level));
        c.push(profile.worst(*a, level));
    }
    series::min_slack_from(t, &d, &c).is_nonnegative()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The precomputed tables agree with the paper's definitions evaluated
    /// directly, at every position, quality and a sample of times.
    #[test]
    fn tables_agree_with_definitions(
        (g, durations, deadline_vals) in arb_instance(7),
        avg_scale in 1u64..4,
        probe in proptest::collection::vec(0u64..600, 8),
    ) {
        let n = g.len();
        let qs = QualitySet::contiguous(0, 2).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), n);
        for (a, dur) in durations.iter().enumerate().take(n) {
            let base = dur.get();
            // avg grows with quality; wc = 2x avg.
            let rows: Vec<(u64, u64)> = (0..3u64)
                .map(|q| {
                    let avg = base * (1 + q * avg_scale);
                    (avg, avg * 2)
                })
                .collect();
            pb.set_levels(a, &rows).unwrap();
        }
        let profile = pb.build().unwrap();
        let deadlines = DeadlineMap::uniform(qs, deadline_vals.clone());
        let order = g.topological_order().to_vec();
        let tables = ConstraintTables::new(order.clone(), &profile, &deadlines).unwrap();

        for i in 0..=n {
            for (qi, q) in profile.qualities().iter().enumerate() {
                for &tv in &probe {
                    let t = Cycles::new(tv);
                    prop_assert_eq!(
                        tables.av_admits(qi, i, t),
                        av_direct(&order, &profile, &deadlines, q, i, t),
                        "av mismatch at i={} qi={} t={}", i, qi, tv
                    );
                    prop_assert_eq!(
                        tables.wc_admits(qi, i, t),
                        wc_direct(&order, &profile, &deadlines, q, i, t),
                        "wc mismatch at i={} qi={} t={}", i, qi, tv
                    );
                }
            }
        }
    }

    /// max_feasible returns the maximum admissible level: everything above
    /// fails, the returned level passes.
    #[test]
    fn max_feasible_is_maximal(
        (g, durations, deadline_vals) in arb_instance(6),
        probe in proptest::collection::vec(0u64..500, 6),
    ) {
        let n = g.len();
        let qs = QualitySet::contiguous(0, 3).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), n);
        for (a, dur) in durations.iter().enumerate().take(n) {
            let base = dur.get();
            let rows: Vec<(u64, u64)> =
                (1..=4u64).map(|q| (base * q, base * q * 3)).collect();
            pb.set_levels(a, &rows).unwrap();
        }
        let profile = pb.build().unwrap();
        let deadlines = DeadlineMap::uniform(qs, deadline_vals);
        let order = g.topological_order().to_vec();
        let tables = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        for i in 0..=n {
            for &tv in &probe {
                let t = Cycles::new(tv);
                match tables.max_feasible(i, t) {
                    Some(qi) => {
                        prop_assert!(tables.qual_const(qi, i, t));
                        for higher in (qi + 1)..tables.quality_count() {
                            prop_assert!(!tables.qual_const(higher, i, t));
                        }
                    }
                    None => {
                        for qi in 0..tables.quality_count() {
                            prop_assert!(!tables.qual_const(qi, i, t));
                        }
                    }
                }
            }
        }
    }

    /// Monotonicity in t: once infeasible at some elapsed time, larger
    /// elapsed times stay infeasible (budgets are upper bounds on t).
    #[test]
    fn admissibility_is_monotone_in_time(
        (g, durations, deadline_vals) in arb_instance(6),
    ) {
        let n = g.len();
        let qs = QualitySet::contiguous(0, 1).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), n);
        for (a, dur) in durations.iter().enumerate().take(n) {
            let base = dur.get();
            pb.set_levels(a, &[(base, base * 2), (base * 2, base * 4)]).unwrap();
        }
        let profile = pb.build().unwrap();
        let deadlines = DeadlineMap::uniform(qs, deadline_vals);
        let order = g.topological_order().to_vec();
        let tables = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        for i in 0..=n {
            for qi in 0..2 {
                let mut was_infeasible = false;
                for tv in (0..500).step_by(25) {
                    let ok = tables.qual_const(qi, i, Cycles::new(tv));
                    if was_infeasible {
                        prop_assert!(!ok, "regained feasibility at t={tv}");
                    }
                    if !ok {
                        was_infeasible = true;
                    }
                }
            }
        }
    }
}

#[test]
fn min_slack_matches_series_on_fixed_example() {
    let mut b = GraphBuilder::new();
    let x = b.action("x");
    let y = b.action("y");
    b.edge(x, y).unwrap();
    let _ = b.build().unwrap();
    let s = feasible::schedule_min_slack(
        &[x, y],
        &[Cycles::new(10), Cycles::new(9)],
        &[Cycles::new(4), Cycles::new(4)],
    );
    assert_eq!(s, Slack::new(1));
}
