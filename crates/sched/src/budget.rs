//! Budget-parametric constraint tables: `Qual_Const` at *any* frame
//! budget with O(1) per-frame setup.
//!
//! [`ConstraintTables`] materializes the suffix budgets for one fixed
//! deadline map — O(|Q|·n) work and fresh allocations per build. That is
//! the right trade when deadlines are arbitrary, but the stream runners
//! always derive their deadlines from a *frame budget* `b` through a
//! [`DeadlineShape`]: every per-instance deadline is affine in `b` with a
//! common denominator (`⌊b·(k+1)/n⌋` for per-iteration pacing, `b` or `+∞`
//! for final-only). Saturated controlled runs pop frames at stochastic
//! instants, so `b` is fresh every frame and a per-budget cache never
//! hits — the serving layer then multiplies the rebuild cost by the
//! stream count.
//!
//! [`BudgetTables`] exploits the affine structure instead. For a fixed
//! (schedule, tiled profile, deadline shape), each suffix budget
//!
//! ```text
//! av(q, i)(b) = min_{j ≥ i} ( D_j(b) − Σ_{k=i..=j} Cav_q(α_k) )
//! ```
//!
//! is a lower envelope of integer lines over `b`: with `n` iterations,
//! `D_j(b) − Σ C = ⌊(m_j·b − n·S_j)/n⌋ + S_{i−1}` where `m_j` is the
//! deadline slope of position `j`'s iteration and `S` are prefix sums of
//! `Cav_q` along the schedule. Because the floor is monotone and every
//! term shares the denominator `n`, the minimum commutes with the floor,
//! so each cell reduces to *one* envelope evaluation plus a prefix-sum
//! offset. Within one deadline class (iteration) the binding position is
//! always the last one in the suffix (prefix sums grow along the
//! schedule), so the number of distinct envelopes is the number of
//! iterations — not the number of positions — and they nest: the
//! envelope for suffix `i` is the envelope over the classes whose last
//! position is `≥ i`. The envelopes are built once per (schedule,
//! profile, shape) in [`fgqos_time::series::LineEnvelope`] (exact
//! integer comparisons, no floats) and evaluated per frame in
//! O(log segments) per cell with zero allocation. The same construction
//! covers the minimal-quality worst-case side (`wcmin`).
//!
//! [`BudgetTables::at_budget`] exposes a [`ConstraintTables`]-compatible
//! view (the full [`TableQuery`] surface) for one budget;
//! [`SharedTables`] lets a controller hold either kind behind one cheap
//! clonable handle. Equivalence with `ConstraintTables::new` at every
//! budget — including 0, near-`u64::MAX` values and `+∞` — is
//! property-tested in `tests/proptest_budget.rs`.
//!
//! # Online-estimator refresh
//!
//! When an online estimator sharpens the execution-time profile between
//! frames, only the `Cav`/`Cwc` *values* move — the schedule, deadline
//! slopes, class structure and version map are untouched. Rather than
//! rebuilding, [`BudgetTables::refresh`] re-sweeps the prefix sums in
//! place and re-hulls only the envelopes of quality levels whose prefixes
//! actually changed, reusing every buffer (O(hull size) per changed
//! quality, no allocation once warm). `refresh(profile')` is
//! property-tested to be indistinguishable from a fresh build over random
//! schedules, shapes and refresh sequences.

use std::sync::Arc;

use fgqos_graph::{ActionId, GraphError};
use fgqos_time::series::{EnvelopeBuilder, LineEnvelope};
use fgqos_time::{Cycles, QualityProfile, Slack};

use crate::{ConstraintTables, SchedError, TableQuery};

/// How a per-frame time budget is decomposed into action deadlines.
///
/// (Previously defined in `fgqos-sim`; it lives here so the scheduling
/// layer can precompute budget-parametric tables for each shape. The
/// simulator re-exports it under its historical path.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineShape {
    /// Every action of macroblock `k` (0-based) gets deadline
    /// `⌊(k+1)·B/N⌋`: uniform pacing, the shape used for the paper's
    /// experiments ("deadlines on the termination of actions since the
    /// beginning of a cycle").
    PerIteration,
    /// Only the last macroblock's actions carry the budget `B`;
    /// everything else is unconstrained. Gives the controller maximal
    /// freedom inside the frame at the cost of pacing.
    FinalOnly,
}

/// The per-instance deadline vector for one frame of budget `budget`,
/// laid out by instance id (`iteration · body_len + body_action`) to
/// match `fgqos_graph::iterate::IteratedGraph`.
///
/// This is the single source of truth for the budget → deadline mapping;
/// [`BudgetTables`] and the simulator's legacy per-budget path both use
/// it. The arithmetic widens to `u128` before multiplying, so budgets up
/// to `u64::MAX − 1` (e.g. replayed wall-clock traces) produce exact
/// deadlines instead of wrapping, and a degenerate `iterations == 0`
/// returns the empty vector instead of underflowing the final-only
/// index.
#[must_use]
pub fn budget_deadlines(
    shape: DeadlineShape,
    iterations: usize,
    body_len: usize,
    budget: Cycles,
) -> Vec<Cycles> {
    let n = iterations;
    if n == 0 {
        return Vec::new();
    }
    let mut out = vec![Cycles::INFINITY; n * body_len];
    match shape {
        DeadlineShape::PerIteration => {
            if budget.is_infinite() {
                return out;
            }
            let b = u128::from(budget.get());
            for k in 0..n {
                // b·(k+1)/n computed in u128: for finite b the result is
                // ≤ b < u64::MAX, so the narrowing cannot fail.
                let scaled = b * (k as u128 + 1) / n as u128;
                let d = Cycles::new(u64::try_from(scaled).expect("scaled deadline fits in u64"));
                for a in 0..body_len {
                    out[k * body_len + a] = d;
                }
            }
        }
        DeadlineShape::FinalOnly => {
            for a in 0..body_len {
                out[(n - 1) * body_len + a] = budget;
            }
        }
    }
    out
}

/// One family of nested suffix envelopes: `versions[v]` is the lower
/// envelope over the `v` deadline classes with the largest last
/// positions, and `version_of` (stored once on [`BudgetTables`], shared
/// between families) maps a schedule position to the version covering
/// its suffix.
type EnvelopeVersions = Vec<LineEnvelope>;

/// Budget-parametric `Qual_Const` tables for one (schedule, tiled
/// profile, deadline shape).
///
/// Build once per stream with [`BudgetTables::new`]; then
/// [`BudgetTables::at_budget`] yields, in O(1) with zero allocation, a
/// view that answers every [`TableQuery`] question for that budget —
/// byte-for-byte the same answers as
/// `ConstraintTables::new(order, profile, uniform(budget_deadlines(b)))`.
///
/// # Example
///
/// ```
/// use fgqos_graph::GraphBuilder;
/// use fgqos_sched::{BudgetTables, DeadlineShape, TableQuery};
/// use fgqos_time::{Cycles, QualityProfile, QualitySet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new();
/// let x = b.action("x");
/// let _ = b.build()?;
/// let qs = QualitySet::contiguous(0, 1)?;
/// let mut pb = QualityProfile::builder(qs, 1);
/// pb.set_levels(0, &[(10, 20), (40, 80)])?;
/// let profile = pb.build()?;
/// // One action, one iteration, the whole budget on the final action.
/// let tables = BudgetTables::new(vec![x], &profile, DeadlineShape::FinalOnly, 1)?;
/// assert_eq!(tables.at_budget(Cycles::new(100)).max_feasible(0, Cycles::ZERO), Some(1));
/// assert_eq!(tables.at_budget(Cycles::new(50)).max_feasible(0, Cycles::ZERO), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BudgetTables {
    order: Vec<ActionId>,
    n: usize,
    nq: usize,
    /// Denominator of the affine deadline terms (`N` iterations).
    iterations: u64,
    shape: DeadlineShape,
    /// Deadline slope of each position's iteration under `shape`
    /// (`None` ⇒ the deadline is `+∞` at every finite budget).
    d_slope: Vec<Option<u64>>,
    /// Action count of the profile the tables were built from (refresh
    /// profiles must match it).
    profile_actions: usize,
    /// Deadline classes `(slope, last_pos)` sorted by last position
    /// descending — the structural input to every suffix-envelope family,
    /// kept so [`BudgetTables::refresh`] can re-hull without re-deriving
    /// the schedule analysis.
    classes: Vec<(u64, usize)>,
    /// Scratch hull builder reused across refreshes.
    scratch: EnvelopeBuilder,
    /// `version_of[i]` (for `i` in `0..=n`): which envelope version
    /// covers the suffix starting at `i`. Shared by the av and wcmin
    /// families — the deadline classes depend only on schedule and
    /// shape.
    version_of: Vec<u32>,
    /// Per quality index: the nested suffix envelopes of the av side.
    av_envs: Vec<EnvelopeVersions>,
    /// `av_prefix[qi·(n+1) + i]`: Σ of `Cav_q` over positions `< i`.
    av_prefix: Vec<u128>,
    /// Suffix envelopes of the minimal-quality worst-case side.
    wc_envs: EnvelopeVersions,
    /// `wc_prefix[i]`: Σ of `Cwc_qmin` over positions `< i`.
    wc_prefix: Vec<u128>,
    /// `cwc_next[qi·n + i] = Cwc_q(α_i)` (budget-independent).
    cwc_next: Vec<Cycles>,
}

impl BudgetTables {
    /// Precomputes the envelopes for schedule `order` under the tiled
    /// `profile`, with deadlines generated from a frame budget by
    /// `shape` over `iterations` macroblocks.
    ///
    /// `profile` must cover `iterations` copies of the body, i.e.
    /// `profile.n_actions() == iterations · body_len`; instance ids in
    /// `order` map to iterations by `index / body_len` exactly as in
    /// `fgqos_graph::iterate::IteratedGraph`.
    ///
    /// # Errors
    ///
    /// [`SchedError::Graph`] (`ZeroIterations`) if `iterations == 0`;
    /// [`SchedError::DimensionMismatch`] if the profile does not tile
    /// over `iterations` or `order` references an action outside it.
    pub fn new(
        order: Vec<ActionId>,
        profile: &QualityProfile,
        shape: DeadlineShape,
        iterations: usize,
    ) -> Result<Self, SchedError> {
        if iterations == 0 {
            return Err(SchedError::Graph(GraphError::ZeroIterations));
        }
        if !profile.n_actions().is_multiple_of(iterations) {
            return Err(SchedError::DimensionMismatch {
                expected: profile.n_actions(),
                actual: iterations,
            });
        }
        let body_len = profile.n_actions() / iterations;
        if let Some(bad) = order.iter().find(|a| a.index() >= profile.n_actions()) {
            return Err(SchedError::DimensionMismatch {
                expected: profile.n_actions(),
                actual: bad.index() + 1,
            });
        }
        let n = order.len();
        let nq = profile.qualities().len();
        let iter_of = |a: ActionId| a.index() / body_len.max(1);

        // Deadline slope per position: m such that D(b) = ⌊m·b/N⌋.
        let d_slope: Vec<Option<u64>> = order
            .iter()
            .map(|&a| match shape {
                DeadlineShape::PerIteration => Some(iter_of(a) as u64 + 1),
                DeadlineShape::FinalOnly => {
                    (iter_of(a) == iterations - 1).then_some(iterations as u64)
                }
            })
            .collect();

        // Deadline classes: one line per iteration with a finite-slope
        // deadline present in the schedule. The binding position of a
        // class inside any suffix is its *last* position (prefix sums of
        // execution times grow along the schedule), so a class
        // contributes exactly while the suffix start is ≤ that position.
        let mut last_pos_of: std::collections::HashMap<u64, usize> =
            std::collections::HashMap::new();
        for (j, slope) in d_slope.iter().enumerate() {
            if let Some(m) = slope {
                last_pos_of.insert(*m, j); // later positions overwrite
            }
        }
        // Sorted by last position, descending: version v covers the v
        // classes whose last positions are the largest.
        let mut classes: Vec<(u64, usize)> = last_pos_of.iter().map(|(&m, &j)| (m, j)).collect();
        classes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // version_of[i] = number of classes whose last position is ≥ i:
        // one merged sweep from the high end over the descending-sorted
        // classes (O(n + classes), not O(n·classes)).
        let mut version_of = vec![0u32; n + 1];
        let mut live = 0usize;
        for i in (0..=n).rev() {
            while live < classes.len() && classes[live].1 >= i {
                live += 1;
            }
            version_of[i] = u32::try_from(live).expect("class count fits u32");
        }

        let levels: Vec<_> = profile.qualities().iter().collect();
        let mut av_prefix = Vec::with_capacity(nq * (n + 1));
        let mut av_envs = Vec::with_capacity(nq);
        let mut cwc_next = Vec::with_capacity(nq * n);
        for &q in &levels {
            let costs: Vec<u128> = order
                .iter()
                .map(|a| u128::from(profile.avg(*a, q).get()))
                .collect();
            let prefix = inclusive_prefix(&costs);
            av_envs.push(suffix_envelopes(&classes, &prefix, iterations as u64));
            av_prefix.extend_from_slice(&prefix);
            for a in &order {
                cwc_next.push(profile.worst(*a, q));
            }
        }
        let qmin = profile.qualities().min();
        let wc_costs: Vec<u128> = order
            .iter()
            .map(|a| u128::from(profile.worst(*a, qmin).get()))
            .collect();
        let wc_prefix = inclusive_prefix(&wc_costs);
        let wc_envs = suffix_envelopes(&classes, &wc_prefix, iterations as u64);

        Ok(BudgetTables {
            order,
            n,
            nq,
            iterations: iterations as u64,
            shape,
            d_slope,
            profile_actions: profile.n_actions(),
            classes,
            scratch: EnvelopeBuilder::new(),
            version_of,
            av_envs,
            av_prefix,
            wc_envs,
            wc_prefix,
            cwc_next,
        })
    }

    /// Re-derives the cost-dependent state — prefix sums, suffix
    /// envelopes, worst-case columns — from a refreshed `profile`,
    /// keeping the schedule structure (deadline slopes, classes, version
    /// map) fixed.
    ///
    /// This is the online-estimator fast path: a profile refresh only
    /// moves the `Cav`/`Cwc` values, so per quality level the work is one
    /// prefix sweep plus an O(hull size) re-hull of that quality's
    /// envelopes, all in place (no allocation once the buffers are warm).
    /// Quality levels whose prefix sums did not change keep their
    /// envelopes untouched. The refreshed tables answer every query
    /// exactly as `BudgetTables::new(order, profile, shape, iterations)`
    /// would.
    ///
    /// # Errors
    ///
    /// [`SchedError::DimensionMismatch`] if `profile` does not have the
    /// action count or quality-level count the tables were built with.
    pub fn refresh(&mut self, profile: &QualityProfile) -> Result<(), SchedError> {
        if profile.n_actions() != self.profile_actions {
            return Err(SchedError::DimensionMismatch {
                expected: self.profile_actions,
                actual: profile.n_actions(),
            });
        }
        if profile.qualities().len() != self.nq {
            return Err(SchedError::DimensionMismatch {
                expected: self.nq,
                actual: profile.qualities().len(),
            });
        }
        // Quality sets are sorted, so the enumerate index is the storage
        // index — `times_by_qidx` skips the per-cell binary search that
        // `avg`/`worst` would redo 2·n·|Q| times per refresh.
        for qi in 0..self.nq {
            let base = qi * (self.n + 1);
            let mut acc = 0u128;
            let mut changed = false;
            for (i, a) in self.order.iter().enumerate() {
                let t = profile.times_by_qidx(a.index(), qi);
                acc += u128::from(t.avg().get());
                let slot = &mut self.av_prefix[base + i + 1];
                if *slot != acc {
                    *slot = acc;
                    changed = true;
                }
                self.cwc_next[qi * self.n + i] = t.worst();
            }
            if changed {
                suffix_envelopes_into(
                    &self.classes,
                    &self.av_prefix[base..base + self.n + 1],
                    self.iterations,
                    &mut self.av_envs[qi],
                    &mut self.scratch,
                );
            }
        }
        let mut acc = 0u128;
        let mut changed = false;
        for (i, a) in self.order.iter().enumerate() {
            // qmin is storage index 0 (sets are sorted ascending).
            acc += u128::from(profile.times_by_qidx(a.index(), 0).worst().get());
            let slot = &mut self.wc_prefix[i + 1];
            if *slot != acc {
                *slot = acc;
                changed = true;
            }
        }
        if changed {
            suffix_envelopes_into(
                &self.classes,
                &self.wc_prefix,
                self.iterations,
                &mut self.wc_envs,
                &mut self.scratch,
            );
        }
        Ok(())
    }

    /// The [`TableQuery`] view of these tables at frame budget `budget`
    /// — O(1), zero allocation.
    #[must_use]
    pub fn at_budget(&self, budget: Cycles) -> BudgetView<'_> {
        BudgetView {
            tables: self,
            budget,
        }
    }

    /// The schedule the tables were computed for.
    #[must_use]
    pub fn order(&self) -> &[ActionId] {
        &self.order
    }

    /// Number of scheduled actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of quality levels.
    #[must_use]
    pub fn quality_count(&self) -> usize {
        self.nq
    }

    /// The deadline shape the envelopes encode.
    #[must_use]
    pub fn shape(&self) -> DeadlineShape {
        self.shape
    }

    /// Number of iterations (the denominator of the affine deadlines).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations as usize
    }

    /// Largest segment count over all stored envelopes (diagnostics: for
    /// tiled profiles under sequential iteration order this is ≤ 2, so a
    /// cell evaluation is effectively O(1)).
    #[must_use]
    pub fn max_segments(&self) -> usize {
        self.av_envs
            .iter()
            .flatten()
            .chain(self.wc_envs.iter())
            .map(LineEnvelope::segments)
            .max()
            .unwrap_or(0)
    }

    /// Approximate resident size of the tables in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        let envs: usize = self
            .av_envs
            .iter()
            .flatten()
            .chain(self.wc_envs.iter())
            .map(LineEnvelope::memory_bytes)
            .sum();
        envs + (self.av_prefix.len() + self.wc_prefix.len()) * std::mem::size_of::<u128>()
            + self.cwc_next.len() * std::mem::size_of::<Cycles>()
            + self.d_slope.len() * std::mem::size_of::<Option<u64>>()
            + self.version_of.len() * std::mem::size_of::<u32>()
            + self.order.len() * std::mem::size_of::<ActionId>()
    }

    /// Envelope evaluation shared by the av and wcmin sides:
    /// `⌊env(b)/N⌋ + prefix[i]` with exact floor division.
    fn suffix_budget(
        &self,
        envs: &EnvelopeVersions,
        prefix: &[u128],
        i: usize,
        budget: Cycles,
    ) -> Slack {
        if i == self.n || budget.is_infinite() {
            return Slack::INFINITY;
        }
        let v = self.version_of[i] as usize;
        match envs[v].eval(budget.get()) {
            None => Slack::INFINITY,
            Some(num) => {
                let offset = i128::try_from(prefix[i]).expect("prefix sums fit in i128");
                Slack::new(num.div_euclid(i128::from(self.iterations)) + offset)
            }
        }
    }

    /// `D(b)` of position `i` (quality-independent under budget-derived
    /// deadline maps).
    fn deadline_of(&self, i: usize, budget: Cycles) -> Cycles {
        match self.d_slope[i] {
            None => Cycles::INFINITY,
            Some(m) => {
                if budget.is_infinite() {
                    Cycles::INFINITY
                } else {
                    let bm = u128::from(budget.get()) * u128::from(m);
                    // Hot path: the product usually fits u64, where the
                    // division is several times cheaper than in u128.
                    let scaled = match u64::try_from(bm) {
                        Ok(small) => small / self.iterations,
                        Err(_) => u64::try_from(bm / u128::from(self.iterations))
                            .expect("scaled deadline fits in u64"),
                    };
                    Cycles::new(scaled)
                }
            }
        }
    }
}

/// Inclusive-prefix-sum helper: `out[i] = Σ costs[..i]`, length `n + 1`.
fn inclusive_prefix(costs: &[u128]) -> Vec<u128> {
    let mut out = Vec::with_capacity(costs.len() + 1);
    let mut acc = 0u128;
    out.push(acc);
    for &c in costs {
        acc += c;
        out.push(acc);
    }
    out
}

/// Builds the nested suffix envelopes for one cost family.
///
/// `classes` are `(slope, last_pos)` pairs sorted by `last_pos`
/// descending; version `v` is the envelope over the first `v` classes,
/// with each class contributing the line `m·b − N·S_{last_pos+1}`.
///
/// Sequential schedules visit iterations in order, so last positions
/// descend exactly as slopes do — every version is then a prefix run of
/// one monotone hull ([`EnvelopeBuilder`]), built in O(total hull size).
/// Orders that interleave iterations non-monotonically (possible under
/// pipelined unrolling) fall back to a from-scratch build per version.
fn suffix_envelopes(
    classes: &[(u64, usize)],
    prefix: &[u128],
    iterations: u64,
) -> EnvelopeVersions {
    let mut versions = Vec::with_capacity(classes.len() + 1);
    let mut builder = EnvelopeBuilder::new();
    suffix_envelopes_into(classes, prefix, iterations, &mut versions, &mut builder);
    versions
}

/// In-place variant of [`suffix_envelopes`]: writes the versions into
/// `out`, reusing its envelopes' buffers, with `builder` as hull scratch.
/// This is what [`BudgetTables::refresh`] calls per changed quality —
/// O(total hull size) and allocation-free once `out` is warm (monotone
/// class orders, i.e. every sequential schedule).
fn suffix_envelopes_into(
    classes: &[(u64, usize)],
    prefix: &[u128],
    iterations: u64,
    out: &mut EnvelopeVersions,
    builder: &mut EnvelopeBuilder,
) {
    let line_of = |m: u64, last: usize| {
        let s = i128::try_from(prefix[last + 1]).expect("prefix sums fit in i128");
        (i128::from(m), -i128::from(iterations) * s)
    };
    out.resize_with(classes.len() + 1, || LineEnvelope::lower(Vec::new()));
    builder.clear();
    builder.snapshot_into(&mut out[0]); // version 0: the empty envelope
    if classes.windows(2).all(|w| w[1].0 < w[0].0) {
        for (v, &(m, last)) in classes.iter().enumerate() {
            let (m, c) = line_of(m, last);
            builder.push_shallower(m, c);
            builder.snapshot_into(&mut out[v + 1]);
        }
    } else {
        let mut lines: Vec<(i128, i128)> = Vec::with_capacity(classes.len());
        for (v, &(m, last)) in classes.iter().enumerate() {
            lines.push(line_of(m, last));
            out[v + 1] = LineEnvelope::lower(lines.clone());
        }
    }
}

/// A [`ConstraintTables`]-compatible view of [`BudgetTables`] at one
/// frame budget. Create with [`BudgetTables::at_budget`]; all
/// [`TableQuery`] methods answer exactly as the materialized tables for
/// that budget would.
#[derive(Debug, Clone, Copy)]
pub struct BudgetView<'a> {
    tables: &'a BudgetTables,
    budget: Cycles,
}

impl BudgetView<'_> {
    /// The budget this view evaluates at.
    #[must_use]
    pub fn budget(&self) -> Cycles {
        self.budget
    }

    /// The underlying parametric tables.
    #[must_use]
    pub fn tables(&self) -> &BudgetTables {
        self.tables
    }
}

impl TableQuery for BudgetView<'_> {
    fn order(&self) -> &[ActionId] {
        &self.tables.order
    }

    fn quality_count(&self) -> usize {
        self.tables.nq
    }

    fn av_budget_at(&self, qi: usize, i: usize) -> Slack {
        let t = self.tables;
        assert!(qi < t.nq && i <= t.n, "table coordinates out of range");
        t.suffix_budget(
            &t.av_envs[qi],
            &t.av_prefix[qi * (t.n + 1)..(qi + 1) * (t.n + 1)],
            i,
            self.budget,
        )
    }

    fn wcmin_budget_at(&self, i: usize) -> Slack {
        let t = self.tables;
        assert!(i <= t.n, "table coordinates out of range");
        t.suffix_budget(&t.wc_envs, &t.wc_prefix, i, self.budget)
    }

    fn deadline_at(&self, qi: usize, i: usize) -> Cycles {
        let t = self.tables;
        assert!(qi < t.nq && i < t.n, "table coordinates out of range");
        t.deadline_of(i, self.budget)
    }

    fn worst_at(&self, qi: usize, i: usize) -> Cycles {
        let t = self.tables;
        assert!(qi < t.nq && i < t.n, "table coordinates out of range");
        t.cwc_next[qi * t.n + i]
    }

    // Control-time hot path: the admit predicates compare in the
    // envelope's numerator domain — `t ≤ ⌊num/N⌋ + P  ⟺  N·(t − P) ≤
    // num` for integers — which saves the 128-bit division that
    // `av_budget_at` pays to report the exact slack.

    fn av_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        let tb = self.tables;
        assert!(qi < tb.nq && i <= tb.n, "table coordinates out of range");
        if i == tb.n || self.budget.is_infinite() {
            return true;
        }
        let env = &tb.av_envs[qi][tb.version_of[i] as usize];
        let Some(num) = env.eval(self.budget.get()) else {
            return true; // no finite deadline in the suffix: slack +∞
        };
        if t.is_infinite() {
            return false;
        }
        let prefix =
            i128::try_from(tb.av_prefix[qi * (tb.n + 1) + i]).expect("prefix sums fit in i128");
        i128::from(tb.iterations) * (i128::from(t.get()) - prefix) <= num
    }

    fn wc_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        let tb = self.tables;
        assert!(qi < tb.nq && i <= tb.n, "table coordinates out of range");
        if i == tb.n {
            return true;
        }
        if self.budget.is_infinite() {
            // Both the own deadline and the wcmin suffix are +∞.
            return true;
        }
        let cwc = i128::from(tb.cwc_next[qi * tb.n + i].get());
        // min(own, rest) admits t  ⟺  own admits t ∧ rest admits t.
        // Own bound: t + Cwc ≤ ⌊m·b/N⌋  ⟺  N·(t + Cwc) ≤ m·b.
        if let Some(m) = tb.d_slope[i] {
            if t.is_infinite() {
                return false;
            }
            let lhs = i128::from(tb.iterations) * (i128::from(t.get()) + cwc);
            let rhs = i128::from(m) * i128::from(self.budget.get());
            if lhs > rhs {
                return false;
            }
        }
        // Rest bound: t + Cwc − P_{i+1} ≤ ⌊num_wc/N⌋.
        let env = &tb.wc_envs[tb.version_of[i + 1] as usize];
        let Some(num) = env.eval(self.budget.get()) else {
            return true; // no finite deadline in the wcmin suffix: +∞
        };
        if t.is_infinite() {
            return false;
        }
        let prefix = i128::try_from(tb.wc_prefix[i + 1]).expect("prefix sums fit in i128");
        i128::from(tb.iterations) * (i128::from(t.get()) + cwc - prefix) <= num
    }
}

/// A cheaply clonable handle to either flavor of constraint tables —
/// what a `CycleController` holds per cycle.
///
/// Frames of a paced stream share one [`ConstraintTables`] per budget
/// ([`SharedTables::Fixed`]); frames of a saturated stream each evaluate
/// the stream's [`BudgetTables`] at their own budget
/// ([`SharedTables::AtBudget`]) without building anything. Cloning is an
/// `Arc` bump either way.
#[derive(Debug, Clone)]
pub enum SharedTables {
    /// Fully materialized tables for one fixed deadline map.
    Fixed(Arc<ConstraintTables>),
    /// Budget-parametric tables evaluated at one frame budget.
    AtBudget(Arc<BudgetTables>, Cycles),
}

impl From<Arc<ConstraintTables>> for SharedTables {
    fn from(t: Arc<ConstraintTables>) -> Self {
        SharedTables::Fixed(t)
    }
}

impl From<ConstraintTables> for SharedTables {
    fn from(t: ConstraintTables) -> Self {
        SharedTables::Fixed(Arc::new(t))
    }
}

impl TableQuery for SharedTables {
    fn order(&self) -> &[ActionId] {
        match self {
            SharedTables::Fixed(t) => t.order(),
            SharedTables::AtBudget(t, _) => t.order(),
        }
    }

    fn quality_count(&self) -> usize {
        match self {
            SharedTables::Fixed(t) => t.quality_count(),
            SharedTables::AtBudget(t, _) => t.quality_count(),
        }
    }

    fn av_budget_at(&self, qi: usize, i: usize) -> Slack {
        match self {
            SharedTables::Fixed(t) => t.av_budget_at(qi, i),
            SharedTables::AtBudget(t, b) => t.at_budget(*b).av_budget_at(qi, i),
        }
    }

    fn wcmin_budget_at(&self, i: usize) -> Slack {
        match self {
            SharedTables::Fixed(t) => t.wcmin_budget_at(i),
            SharedTables::AtBudget(t, b) => t.at_budget(*b).wcmin_budget_at(i),
        }
    }

    fn deadline_at(&self, qi: usize, i: usize) -> Cycles {
        match self {
            SharedTables::Fixed(t) => t.deadline_at(qi, i),
            SharedTables::AtBudget(t, b) => TableQuery::deadline_at(&t.at_budget(*b), qi, i),
        }
    }

    fn worst_at(&self, qi: usize, i: usize) -> Cycles {
        match self {
            SharedTables::Fixed(t) => t.worst_at(qi, i),
            SharedTables::AtBudget(t, b) => TableQuery::worst_at(&t.at_budget(*b), qi, i),
        }
    }

    fn wc_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        match self {
            SharedTables::Fixed(tb) => tb.wc_admits(qi, i, t),
            SharedTables::AtBudget(tb, b) => tb.at_budget(*b).wc_admits(qi, i, t),
        }
    }

    fn av_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        match self {
            SharedTables::Fixed(tb) => tb.av_admits(qi, i, t),
            SharedTables::AtBudget(tb, b) => tb.at_budget(*b).av_admits(qi, i, t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_graph::GraphBuilder;
    use fgqos_time::{DeadlineMap, QualitySet};

    fn c(v: u64) -> Cycles {
        Cycles::new(v)
    }

    /// 2 iterations of a 2-action body, 2 quality levels; sequential
    /// instance order.
    fn setup(nq_hi: u8) -> (Vec<ActionId>, QualityProfile) {
        let mut b = GraphBuilder::new();
        let ids: Vec<ActionId> = (0..4).map(|i| b.action(format!("a{i}"))).collect();
        let _ = b.build().unwrap();
        let qs = QualitySet::contiguous(0, nq_hi).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), 4);
        for a in 0..4 {
            let levels: Vec<(u64, u64)> = (0..=u64::from(nq_hi))
                .map(|q| (10 * (q + 1) + a as u64, 20 * (q + 1) + a as u64))
                .collect();
            pb.set_levels(a, &levels).unwrap();
        }
        (ids, pb.build().unwrap())
    }

    fn reference(
        order: &[ActionId],
        profile: &QualityProfile,
        shape: DeadlineShape,
        iterations: usize,
        budget: Cycles,
    ) -> ConstraintTables {
        let body_len = profile.n_actions() / iterations;
        let dm = DeadlineMap::uniform(
            profile.qualities().clone(),
            budget_deadlines(shape, iterations, body_len, budget),
        );
        ConstraintTables::new(order.to_vec(), profile, &dm).unwrap()
    }

    fn assert_equivalent(
        bt: &BudgetTables,
        ct: &ConstraintTables,
        budget: Cycles,
        sample_t: &[Cycles],
    ) {
        let view = bt.at_budget(budget);
        assert_eq!(view.len(), ct.len());
        for i in 0..=ct.len() {
            assert_eq!(
                view.wcmin_budget_at(i),
                ct.wcmin_budget_at(i),
                "wcmin at i={i} budget={budget}"
            );
            for qi in 0..ct.quality_count() {
                assert_eq!(
                    view.av_budget_at(qi, i),
                    ct.av_budget_at(qi, i),
                    "av at qi={qi} i={i} budget={budget}"
                );
                if i < ct.len() {
                    assert_eq!(TableQuery::deadline_at(&view, qi, i), ct.deadline_at(qi, i));
                    assert_eq!(TableQuery::worst_at(&view, qi, i), ct.worst_at(qi, i));
                }
                for &t in sample_t {
                    assert_eq!(view.av_admits(qi, i, t), ct.av_admits(qi, i, t));
                    assert_eq!(view.wc_admits(qi, i, t), ct.wc_admits(qi, i, t));
                    assert_eq!(view.qual_const(qi, i, t), ct.qual_const(qi, i, t));
                }
            }
            for &t in sample_t {
                assert_eq!(view.max_feasible(i, t), ct.max_feasible(i, t));
                assert_eq!(view.max_feasible_soft(i, t), ct.max_feasible_soft(i, t));
            }
        }
    }

    #[test]
    fn matches_materialized_tables_at_many_budgets() {
        let (order, profile) = setup(1);
        let ts: Vec<Cycles> = [0u64, 1, 20, 45, 90, 200, 1_000]
            .iter()
            .map(|&v| c(v))
            .collect();
        for shape in [DeadlineShape::PerIteration, DeadlineShape::FinalOnly] {
            let bt = BudgetTables::new(order.clone(), &profile, shape, 2).unwrap();
            for budget in [
                Cycles::ZERO,
                c(1),
                c(37),
                c(100),
                c(101),
                c(5_000),
                c(u64::MAX / 2),
                c(u64::MAX / 2 + 7),
                c(u64::MAX - 1),
                Cycles::INFINITY,
            ] {
                let ct = reference(&order, &profile, shape, 2, budget);
                assert_equivalent(&bt, &ct, budget, &ts);
            }
        }
    }

    #[test]
    fn near_overflow_budget_regression() {
        // The legacy u64 path computed b·(k+1) before dividing: for
        // b = u64::MAX/2 and k ≥ 1 that wraps, producing bogus tiny
        // deadlines. The u128 path keeps the exact floors.
        let b = u64::MAX / 2;
        let d = budget_deadlines(DeadlineShape::PerIteration, 3, 2, c(b));
        assert_eq!(d.len(), 6);
        let expected: Vec<u64> = (0..3)
            .map(|k| u64::try_from(u128::from(b) * (k + 1) / 3).unwrap())
            .collect();
        for k in 0..3 {
            assert_eq!(d[k * 2], c(expected[k]), "iteration {k}");
            assert_eq!(d[k * 2 + 1], c(expected[k]));
            // Sanity: the wrapped u64 result would be far smaller.
            assert!(expected[k] >= b / 3);
        }
        // Deadlines are non-decreasing and end exactly at the budget.
        assert!(expected.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(expected[2], b);
    }

    #[test]
    fn zero_iterations_is_guarded_everywhere() {
        // budget_deadlines: empty, no index underflow in FinalOnly.
        assert!(budget_deadlines(DeadlineShape::FinalOnly, 0, 3, c(100)).is_empty());
        assert!(budget_deadlines(DeadlineShape::PerIteration, 0, 3, c(100)).is_empty());
        // BudgetTables::new: clean error.
        let (order, profile) = setup(1);
        assert!(matches!(
            BudgetTables::new(order, &profile, DeadlineShape::FinalOnly, 0),
            Err(SchedError::Graph(_))
        ));
    }

    #[test]
    fn constructor_validates_dimensions() {
        let (order, profile) = setup(1);
        // 4 actions do not tile over 3 iterations.
        assert!(matches!(
            BudgetTables::new(order.clone(), &profile, DeadlineShape::PerIteration, 3),
            Err(SchedError::DimensionMismatch { .. })
        ));
        // Out-of-range instance id.
        let mut bad = order;
        bad.push(ActionId::from_index(99));
        assert!(matches!(
            BudgetTables::new(bad, &profile, DeadlineShape::PerIteration, 2),
            Err(SchedError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn envelopes_stay_tiny_for_tiled_profiles() {
        // Uniformly tiled body costs + sequential order: per-iteration
        // envelopes collapse to ≤ 2 segments, the O(1)-evaluation claim.
        let mut b = GraphBuilder::new();
        let n_iter = 32usize;
        let body_len = 3usize;
        let ids: Vec<ActionId> = (0..n_iter * body_len)
            .map(|i| b.action(format!("a{i}")))
            .collect();
        let _ = b.build().unwrap();
        let qs = QualitySet::contiguous(0, 3).unwrap();
        let mut pb = QualityProfile::builder(qs, n_iter * body_len);
        for a in 0..n_iter * body_len {
            let base = (a % body_len) as u64;
            let levels: Vec<(u64, u64)> = (0..4)
                .map(|q| (100 + base + 10 * q, 200 + base + 20 * q))
                .collect();
            pb.set_levels(a, &levels).unwrap();
        }
        let profile = pb.build().unwrap();
        let bt = BudgetTables::new(ids, &profile, DeadlineShape::PerIteration, n_iter).unwrap();
        assert!(
            bt.max_segments() <= 2,
            "tiled envelopes grew to {} segments",
            bt.max_segments()
        );
        assert!(bt.memory_bytes() > 0);
        assert_eq!(bt.iterations(), n_iter);
        assert_eq!(bt.shape(), DeadlineShape::PerIteration);
        assert!(!bt.is_empty());
        assert_eq!(bt.quality_count(), 4);
        assert_eq!(bt.order().len(), n_iter * body_len);
    }

    /// Same dimensions as [`setup`], different cost values — the shape of
    /// an online-estimator profile refresh.
    fn refreshed_profile(nq_hi: u8) -> QualityProfile {
        let qs = QualitySet::contiguous(0, nq_hi).unwrap();
        let mut pb = QualityProfile::builder(qs, 4);
        for a in 0..4 {
            let levels: Vec<(u64, u64)> = (0..=u64::from(nq_hi))
                .map(|q| (13 * (q + 1) + 2 * a as u64, 29 * (q + 1) + 2 * a as u64))
                .collect();
            pb.set_levels(a, &levels).unwrap();
        }
        pb.build().unwrap()
    }

    #[test]
    fn refresh_matches_a_fresh_build() {
        let (order, profile) = setup(1);
        let profile2 = refreshed_profile(1);
        let ts: Vec<Cycles> = [0u64, 1, 20, 45, 90, 200, 1_000]
            .iter()
            .map(|&v| c(v))
            .collect();
        for shape in [DeadlineShape::PerIteration, DeadlineShape::FinalOnly] {
            let mut bt = BudgetTables::new(order.clone(), &profile, shape, 2).unwrap();
            bt.refresh(&profile2).unwrap();
            for budget in [Cycles::ZERO, c(37), c(100), c(5_000), Cycles::INFINITY] {
                let ct = reference(&order, &profile2, shape, 2, budget);
                assert_equivalent(&bt, &ct, budget, &ts);
            }
            // A second, no-op refresh changes nothing.
            bt.refresh(&profile2).unwrap();
            let ct = reference(&order, &profile2, shape, 2, c(100));
            assert_equivalent(&bt, &ct, c(100), &ts);
            // Refreshing back restores the original answers exactly.
            bt.refresh(&profile).unwrap();
            let fresh = BudgetTables::new(order.clone(), &profile, shape, 2).unwrap();
            for budget in [c(0), c(37), c(100), c(5_000)] {
                let view = bt.at_budget(budget);
                let want = fresh.at_budget(budget);
                for i in 0..=fresh.len() {
                    assert_eq!(view.wcmin_budget_at(i), want.wcmin_budget_at(i));
                    for qi in 0..fresh.quality_count() {
                        assert_eq!(view.av_budget_at(qi, i), want.av_budget_at(qi, i));
                    }
                }
            }
        }
    }

    #[test]
    fn refresh_validates_dimensions() {
        let (order, profile) = setup(1);
        let mut bt = BudgetTables::new(order, &profile, DeadlineShape::PerIteration, 2).unwrap();
        // Wrong action count.
        let qs = QualitySet::contiguous(0, 1).unwrap();
        let mut pb = QualityProfile::builder(qs, 2);
        for a in 0..2 {
            pb.set_levels(a, &[(10, 20), (30, 60)]).unwrap();
        }
        let short = pb.build().unwrap();
        assert!(matches!(
            bt.refresh(&short),
            Err(SchedError::DimensionMismatch { .. })
        ));
        // Wrong quality-level count.
        let wide = refreshed_profile(2);
        assert!(matches!(
            bt.refresh(&wide),
            Err(SchedError::DimensionMismatch { .. })
        ));
        // The failed refreshes left the tables usable.
        bt.refresh(&refreshed_profile(1)).unwrap();
    }

    #[test]
    fn shared_tables_delegate_consistently() {
        let (order, profile) = setup(1);
        let shape = DeadlineShape::PerIteration;
        let budget = c(240);
        let bt = Arc::new(BudgetTables::new(order.clone(), &profile, shape, 2).unwrap());
        let ct = Arc::new(reference(&order, &profile, shape, 2, budget));
        let fixed = SharedTables::from(Arc::clone(&ct));
        let param = SharedTables::AtBudget(Arc::clone(&bt), budget);
        for i in 0..=ct.len() {
            for qi in 0..ct.quality_count() {
                assert_eq!(fixed.av_budget_at(qi, i), param.av_budget_at(qi, i));
                for t in [c(0), c(50), c(120), c(500)] {
                    assert_eq!(fixed.qual_const(qi, i, t), param.qual_const(qi, i, t));
                }
            }
            assert_eq!(fixed.wcmin_budget_at(i), param.wcmin_budget_at(i));
            assert_eq!(fixed.max_feasible(i, c(30)), param.max_feasible(i, c(30)));
        }
        assert_eq!(fixed.order(), param.order());
        assert_eq!(fixed.len(), param.len());
        // From<ConstraintTables> by value also works.
        let owned: SharedTables = reference(&order, &profile, shape, 2, budget).into();
        assert_eq!(owned.quality_count(), 2);
    }
}
