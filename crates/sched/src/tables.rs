//! Precomputed `Qual_Const` tables.
//!
//! The prototype tool of the paper (Fig. 4) precomputes, for a fixed EDF
//! schedule `α`, "tables containing pre-computed values used by the
//! controller for the computation of `Qual_Constav` and `Qual_Constwc`".
//! This module reproduces those tables.
//!
//! With 0-based positions (`i` actions already executed, suffix starting
//! at `i`), elapsed time `t`, and quality `q`:
//!
//! * `Qual_Constav(q, i, t)`:
//!   `t ≤ min_{j ≥ i} ( D_q(α_j) − Σ_{k=i..=j} Cav_q(α_k) )`
//!   — the right-hand side is a pure suffix budget at constant quality `q`,
//!   precomputed per `(q, i)` in `O(|Q|·n)`;
//! * `Qual_Constwc(q, i, t)`:
//!   `t ≤ min( D_q(α_i) − Cwc_q(α_i),
//!             wcmin(i+1) − Cwc_q(α_i) )`
//!   where `wcmin(i+1) = min_{j ≥ i+1} ( D_qmin(α_j) − Σ Cwc_qmin )` is a
//!   single suffix-budget table at the minimal quality — the next action
//!   runs at `q`, everything after falls back to `q_min` (the paper's
//!   `θ'`).
//!
//! Both checks are O(1) at control time; choosing
//! `q_M = max{q | Qual_Const}` is `O(|Q|)`.

use std::fmt;

use fgqos_graph::ActionId;
use fgqos_time::series::suffix_budgets;
use fgqos_time::{Cycles, DeadlineMap, QualityProfile, Slack};

use crate::SchedError;

/// The query surface of a set of `Qual_Const` tables — everything the
/// controller, the quality policies and the runners read at control time.
///
/// Implemented by [`ConstraintTables`] (fully materialized for one fixed
/// deadline map) and by the budget-parametric views of
/// [`crate::BudgetTables`] (evaluated lazily at one frame budget). The
/// six primitive accessors define the tables; the `Qual_Const`
/// predicates and the `q_M` searches are derived from them and shared by
/// every implementation, so "decision-equivalent" reduces to "the
/// primitives agree".
pub trait TableQuery: fmt::Debug + Send + Sync {
    /// The schedule `α` the tables were computed for.
    fn order(&self) -> &[ActionId];

    /// Number of quality levels.
    fn quality_count(&self) -> usize;

    /// The raw average-budget entry for `(quality index, position)`:
    /// the largest elapsed time at which the suffix starting at `i` can
    /// still run entirely at quality `qi` on *average* times.
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i > len()`.
    fn av_budget_at(&self, qi: usize, i: usize) -> Slack;

    /// The raw minimal-quality worst-case budget for `position`.
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    fn wcmin_budget_at(&self, i: usize) -> Slack;

    /// `D_q(α_i)`: the deadline of the action at position `i` under
    /// quality index `qi`.
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i >= len()`.
    fn deadline_at(&self, qi: usize, i: usize) -> Cycles;

    /// `Cwc_q(α_i)`: the worst-case time of the action at position `i`
    /// under quality index `qi`.
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i >= len()`.
    fn worst_at(&self, qi: usize, i: usize) -> Cycles;

    /// Number of scheduled actions.
    fn len(&self) -> usize {
        self.order().len()
    }

    /// Whether the schedule is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `Qual_Constav`: may the suffix starting at position `i` run
    /// entirely at quality index `qi` given elapsed time `t`, judged on
    /// *average* times? (The optimality half of the constraint.)
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i > len()`.
    fn av_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        self.av_budget_at(qi, i).admits(t)
    }

    /// `Qual_Constwc`: if the next action (position `i`) runs at quality
    /// index `qi` and *everything after falls back to minimal quality*,
    /// do worst-case times still meet every deadline? (The safety half.)
    ///
    /// Vacuously true at `i == len()`.
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i > len()`.
    fn wc_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        if i == self.len() {
            assert!(qi < self.quality_count(), "table coordinates out of range");
            return true;
        }
        let cwc = self.worst_at(qi, i);
        let d = self.deadline_at(qi, i);
        let own = if d.is_infinite() {
            Slack::INFINITY
        } else {
            Slack::new(i128::from(d.get()))
        }
        .minus(cwc);
        let rest = self.wcmin_budget_at(i + 1).minus(cwc);
        own.min(rest).admits(t)
    }

    /// The full `Qual_Const = Qual_Constav ∧ Qual_Constwc` predicate.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    fn qual_const(&self, qi: usize, i: usize, t: Cycles) -> bool {
        self.av_admits(qi, i, t) && self.wc_admits(qi, i, t)
    }

    /// `q_M = max{ q | Qual_Const(α_q, θ_q, t, i) }` as a quality
    /// *index*, or `None` when no level is admissible.
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    fn max_feasible(&self, i: usize, t: Cycles) -> Option<usize> {
        (0..self.quality_count())
            .rev()
            .find(|&qi| self.qual_const(qi, i, t))
    }

    /// Like [`TableQuery::max_feasible`] but judging only the
    /// average-time constraint (the paper's soft-deadline mode).
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    fn max_feasible_soft(&self, i: usize, t: Cycles) -> Option<usize> {
        (0..self.quality_count())
            .rev()
            .find(|&qi| self.av_admits(qi, i, t))
    }
}

impl TableQuery for ConstraintTables {
    fn order(&self) -> &[ActionId] {
        ConstraintTables::order(self)
    }

    fn quality_count(&self) -> usize {
        ConstraintTables::quality_count(self)
    }

    fn av_budget_at(&self, qi: usize, i: usize) -> Slack {
        ConstraintTables::av_budget_at(self, qi, i)
    }

    fn wcmin_budget_at(&self, i: usize) -> Slack {
        ConstraintTables::wcmin_budget_at(self, i)
    }

    fn deadline_at(&self, qi: usize, i: usize) -> Cycles {
        ConstraintTables::deadline_at(self, qi, i)
    }

    fn worst_at(&self, qi: usize, i: usize) -> Cycles {
        ConstraintTables::worst_at(self, qi, i)
    }

    // The inherent lookups are already O(1) table reads; only `wc_admits`
    // benefits from the cached `d_next` slacks.
    fn wc_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        ConstraintTables::wc_admits(self, qi, i, t)
    }

    fn av_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        ConstraintTables::av_admits(self, qi, i, t)
    }
}

/// Precomputed constraint tables for one cycle schedule.
///
/// # Example
///
/// ```
/// use fgqos_graph::GraphBuilder;
/// use fgqos_sched::ConstraintTables;
/// use fgqos_time::{Cycles, DeadlineMap, QualityProfile, QualitySet};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = GraphBuilder::new();
/// let x = b.action("x");
/// let g = b.build()?;
/// let qs = QualitySet::contiguous(0, 1)?;
/// let mut pb = QualityProfile::builder(qs.clone(), 1);
/// pb.set_levels(0, &[(10, 20), (40, 80)])?;
/// let profile = pb.build()?;
/// let deadlines = DeadlineMap::uniform(qs, vec![Cycles::new(100)]);
/// let tables = ConstraintTables::new(vec![x], &profile, &deadlines)?;
/// // At t=0 even the expensive level fits: 80 <= 100.
/// assert_eq!(tables.max_feasible(0, Cycles::ZERO), Some(1));
/// // At t=30 the worst-case constraint kills q1 (30+80 > 100).
/// assert_eq!(tables.max_feasible(0, Cycles::new(30)), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConstraintTables {
    order: Vec<ActionId>,
    n: usize,
    nq: usize,
    /// `av_budget[qi * (n+1) + i]`: max admissible `t` for the all-`q`
    /// average-time suffix starting at `i`.
    av_budget: Vec<Slack>,
    /// `wcmin_budget[i]`: max admissible `t` for the all-`q_min`
    /// worst-case suffix starting at `i`.
    wcmin_budget: Vec<Slack>,
    /// `d_next[qi * n + i] = D_q(α_i)` as a slack bound.
    d_next: Vec<Slack>,
    /// `cwc_next[qi * n + i] = Cwc_q(α_i)`.
    cwc_next: Vec<Cycles>,
}

impl ConstraintTables {
    /// Precomputes the tables for schedule `order` under `profile` and
    /// `deadlines`.
    ///
    /// # Errors
    ///
    /// [`SchedError::DimensionMismatch`] if the profile and deadline map
    /// disagree on action count, or if `order` references an action
    /// outside them; [`SchedError::QualitySetMismatch`] if they are
    /// indexed by different quality sets.
    pub fn new(
        order: Vec<ActionId>,
        profile: &QualityProfile,
        deadlines: &DeadlineMap,
    ) -> Result<Self, SchedError> {
        if profile.n_actions() != deadlines.n_actions() {
            return Err(SchedError::DimensionMismatch {
                expected: profile.n_actions(),
                actual: deadlines.n_actions(),
            });
        }
        if profile.qualities() != deadlines.qualities() {
            return Err(SchedError::QualitySetMismatch);
        }
        if let Some(bad) = order.iter().find(|a| a.index() >= profile.n_actions()) {
            return Err(SchedError::DimensionMismatch {
                expected: profile.n_actions(),
                actual: bad.index() + 1,
            });
        }
        let n = order.len();
        let nq = profile.qualities().len();
        let mut av_budget = Vec::with_capacity(nq * (n + 1));
        let mut d_next = Vec::with_capacity(nq * n);
        let mut cwc_next = Vec::with_capacity(nq * n);
        let levels: Vec<_> = profile.qualities().iter().collect();
        for (qi, &q) in levels.iter().enumerate() {
            let d: Vec<Cycles> = order.iter().map(|a| deadlines.deadline(*a, q)).collect();
            let cav: Vec<Cycles> = order.iter().map(|a| profile.avg(*a, q)).collect();
            av_budget.extend(suffix_budgets(&d, &cav));
            for (a, &da) in order.iter().zip(&d) {
                d_next.push(if da.is_infinite() {
                    Slack::INFINITY
                } else {
                    Slack::new(i128::from(da.get()))
                });
                cwc_next.push(profile.worst(*a, q));
            }
            let _ = qi;
        }
        let qmin = profile.qualities().min();
        let d_min: Vec<Cycles> = order.iter().map(|a| deadlines.deadline(*a, qmin)).collect();
        let cwc_min: Vec<Cycles> = order.iter().map(|a| profile.worst(*a, qmin)).collect();
        let wcmin_budget = suffix_budgets(&d_min, &cwc_min);
        Ok(ConstraintTables {
            order,
            n,
            nq,
            av_budget,
            wcmin_budget,
            d_next,
            cwc_next,
        })
    }

    /// Recomputes only the average-time budgets after the online estimator
    /// updated `Cav` (the worst-case side is unaffected). `O(|Q|·n)`.
    ///
    /// # Errors
    ///
    /// [`SchedError::DimensionMismatch`] /
    /// [`SchedError::QualitySetMismatch`] if `profile`/`deadlines` no
    /// longer match the order the tables were built for.
    pub fn rebuild_av(
        &mut self,
        profile: &QualityProfile,
        deadlines: &DeadlineMap,
    ) -> Result<(), SchedError> {
        // Mirror `new`'s validation exactly: a reshaped or shrunken
        // profile must surface as an error here, not as a panic inside
        // `DeadlineMap::deadline` below.
        if profile.n_actions() != deadlines.n_actions() {
            return Err(SchedError::DimensionMismatch {
                expected: profile.n_actions(),
                actual: deadlines.n_actions(),
            });
        }
        if profile.qualities() != deadlines.qualities() {
            return Err(SchedError::QualitySetMismatch);
        }
        if profile.qualities().len() != self.nq {
            return Err(SchedError::DimensionMismatch {
                expected: self.nq,
                actual: profile.qualities().len(),
            });
        }
        if let Some(bad) = self.order.iter().find(|a| a.index() >= profile.n_actions()) {
            return Err(SchedError::DimensionMismatch {
                expected: profile.n_actions(),
                actual: bad.index() + 1,
            });
        }
        let mut av_budget = Vec::with_capacity(self.nq * (self.n + 1));
        for q in profile.qualities().iter() {
            let d: Vec<Cycles> = self
                .order
                .iter()
                .map(|a| deadlines.deadline(*a, q))
                .collect();
            let cav: Vec<Cycles> = self.order.iter().map(|a| profile.avg(*a, q)).collect();
            av_budget.extend(suffix_budgets(&d, &cav));
        }
        self.av_budget = av_budget;
        Ok(())
    }

    /// The schedule the tables were computed for.
    #[must_use]
    pub fn order(&self) -> &[ActionId] {
        &self.order
    }

    /// Number of scheduled actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of quality levels.
    #[must_use]
    pub fn quality_count(&self) -> usize {
        self.nq
    }

    /// `Qual_Constav`: may the suffix starting at position `i` run entirely
    /// at quality index `qi` given elapsed time `t`, judged on *average*
    /// times? (The optimality half of the constraint.)
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i > len()`.
    #[must_use]
    pub fn av_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        assert!(
            qi < self.nq && i <= self.n,
            "table coordinates out of range"
        );
        self.av_budget[qi * (self.n + 1) + i].admits(t)
    }

    /// `Qual_Constwc`: if the next action (position `i`) runs at quality
    /// index `qi` and *everything after falls back to minimal quality*, do
    /// worst-case times still meet every deadline? (The safety half.)
    ///
    /// Vacuously true at `i == len()`.
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i > len()`.
    #[must_use]
    pub fn wc_admits(&self, qi: usize, i: usize, t: Cycles) -> bool {
        assert!(
            qi < self.nq && i <= self.n,
            "table coordinates out of range"
        );
        if i == self.n {
            return true;
        }
        let cwc = self.cwc_next[qi * self.n + i];
        let own = self.d_next[qi * self.n + i].minus(cwc);
        let rest = self.wcmin_budget[i + 1].minus(cwc);
        own.min(rest).admits(t)
    }

    /// The full `Qual_Const = Qual_Constav ∧ Qual_Constwc` predicate.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range coordinates.
    #[must_use]
    pub fn qual_const(&self, qi: usize, i: usize, t: Cycles) -> bool {
        self.av_admits(qi, i, t) && self.wc_admits(qi, i, t)
    }

    /// `q_M = max{ q | Qual_Const(α_q, θ_q, t, i) }` as a quality *index*,
    /// or `None` when no level is admissible (possible only if the
    /// schedulability precondition was violated or actual times exceeded
    /// the declared worst case).
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    #[must_use]
    pub fn max_feasible(&self, i: usize, t: Cycles) -> Option<usize> {
        (0..self.nq).rev().find(|&qi| self.qual_const(qi, i, t))
    }

    /// Like [`ConstraintTables::max_feasible`] but judging only the
    /// average-time constraint — the paper's soft-deadline mode ("for soft
    /// deadlines, the Quality Manager applies only the average quality
    /// constraint", Section 4).
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    #[must_use]
    pub fn max_feasible_soft(&self, i: usize, t: Cycles) -> Option<usize> {
        (0..self.nq).rev().find(|&qi| self.av_admits(qi, i, t))
    }

    /// `D_q(α_i)`: the deadline of the action at position `i` under
    /// quality index `qi` (cached at construction; used by the controller
    /// for miss detection and by codegen).
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i >= len()`.
    #[must_use]
    pub fn deadline_at(&self, qi: usize, i: usize) -> Cycles {
        assert!(qi < self.nq && i < self.n, "table coordinates out of range");
        let s = self.d_next[qi * self.n + i];
        if s == Slack::INFINITY {
            Cycles::INFINITY
        } else {
            Cycles::new(u64::try_from(s.get()).expect("deadlines are non-negative"))
        }
    }

    /// `Cwc_q(α_i)`: the worst-case time of the action at position `i`
    /// under quality index `qi` (cached at construction; used by codegen).
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i >= len()`.
    #[must_use]
    pub fn worst_at(&self, qi: usize, i: usize) -> Cycles {
        assert!(qi < self.nq && i < self.n, "table coordinates out of range");
        self.cwc_next[qi * self.n + i]
    }

    /// The raw average-budget entry for `(quality index, position)` —
    /// exposed for codegen and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `qi >= quality_count()` or `i > len()`.
    #[must_use]
    pub fn av_budget_at(&self, qi: usize, i: usize) -> Slack {
        assert!(
            qi < self.nq && i <= self.n,
            "table coordinates out of range"
        );
        self.av_budget[qi * (self.n + 1) + i]
    }

    /// The raw minimal-quality worst-case budget for `position` — exposed
    /// for codegen and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `i > len()`.
    #[must_use]
    pub fn wcmin_budget_at(&self, i: usize) -> Slack {
        assert!(i <= self.n, "table coordinates out of range");
        self.wcmin_budget[i]
    }

    /// Approximate resident size of the tables in bytes (for the Section 3
    /// instrumentation-overhead report).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.av_budget.len() * std::mem::size_of::<Slack>()
            + self.wcmin_budget.len() * std::mem::size_of::<Slack>()
            + self.d_next.len() * std::mem::size_of::<Slack>()
            + self.cwc_next.len() * std::mem::size_of::<Cycles>()
            + self.order.len() * std::mem::size_of::<ActionId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_graph::GraphBuilder;
    use fgqos_time::QualitySet;

    fn c(v: u64) -> Cycles {
        Cycles::new(v)
    }

    /// Two-action chain, two quality levels.
    /// q0: avg 10 / wc 20 each; q1: avg 40 / wc 80 each.
    /// Deadlines: x at 100, y at 200 (quality-independent).
    fn setup() -> (Vec<ActionId>, QualityProfile, DeadlineMap) {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        b.edge(x, y).unwrap();
        let _g = b.build().unwrap();
        let qs = QualitySet::contiguous(0, 1).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), 2);
        pb.set_levels(0, &[(10, 20), (40, 80)]).unwrap();
        pb.set_levels(1, &[(10, 20), (40, 80)]).unwrap();
        let profile = pb.build().unwrap();
        let deadlines = DeadlineMap::uniform(qs, vec![c(100), c(200)]);
        (vec![x, y], profile, deadlines)
    }

    #[test]
    fn av_budgets_match_hand_computation() {
        let (order, profile, deadlines) = setup();
        let t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        // q0 suffix at 0: min(100-10, 200-20) = 90; at 1: 200-10=190.
        assert!(t.av_admits(0, 0, c(90)));
        assert!(!t.av_admits(0, 0, c(91)));
        assert!(t.av_admits(0, 1, c(190)));
        assert!(!t.av_admits(0, 1, c(191)));
        // q1 suffix at 0: min(100-40, 200-80) = 60.
        assert!(t.av_admits(1, 0, c(60)));
        assert!(!t.av_admits(1, 0, c(61)));
        // Empty suffix always admissible.
        assert!(t.av_admits(0, 2, c(1_000_000)));
    }

    #[test]
    fn wc_constraint_uses_qmin_fallback() {
        let (order, profile, deadlines) = setup();
        let t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        // Next = x at q1 (wc 80): own bound 100-80 = 20;
        // rest at qmin: y wc 20, deadline 200 -> budget 180; 180-80 = 100.
        // So wc bound = 20.
        assert!(t.wc_admits(1, 0, c(20)));
        assert!(!t.wc_admits(1, 0, c(21)));
        // Next = x at q0 (wc 20): own 80, rest 160 -> bound 80.
        assert!(t.wc_admits(0, 0, c(80)));
        assert!(!t.wc_admits(0, 0, c(81)));
        // Position n is vacuous.
        assert!(t.wc_admits(1, 2, Cycles::mega(999)));
    }

    #[test]
    fn max_feasible_scans_downward() {
        let (order, profile, deadlines) = setup();
        let t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        // At t=0: q1 admissible (av 60 >= 0, wc 20 >= 0).
        assert_eq!(t.max_feasible(0, c(0)), Some(1));
        // At t=30: q1 wc fails (30 > 20), q0 fine.
        assert_eq!(t.max_feasible(0, c(30)), Some(0));
        // At t=95: q0 av fails (95 > 90) -> nothing.
        assert_eq!(t.max_feasible(0, c(95)), None);
        // Soft mode ignores the wc side: q1 admissible until t=60.
        assert_eq!(t.max_feasible_soft(0, c(30)), Some(1));
        assert_eq!(t.max_feasible_soft(0, c(61)), Some(0));
    }

    #[test]
    fn infinite_deadlines_disable_constraints() {
        let (order, profile, _) = setup();
        let qs = profile.qualities().clone();
        let deadlines = DeadlineMap::uniform(qs, vec![Cycles::INFINITY, Cycles::INFINITY]);
        let t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        assert_eq!(t.max_feasible(0, Cycles::mega(10_000)), Some(1));
    }

    #[test]
    fn rebuild_av_tracks_profile_updates() {
        let (order, mut profile, deadlines) = setup();
        let mut t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        assert!(t.av_admits(0, 0, c(90)));
        // Estimator learns x is slower on average at q0: avg 10 -> 20.
        profile
            .update_avg(0, fgqos_time::Quality::new(0), c(20))
            .unwrap();
        t.rebuild_av(&profile, &deadlines).unwrap();
        assert!(t.av_admits(0, 0, c(80)));
        assert!(!t.av_admits(0, 0, c(81)));
    }

    #[test]
    fn rebuild_av_rejects_reshaped_profiles() {
        let (order, profile, deadlines) = setup();
        let mut t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        // Shrunken profile (1 action) with a matching deadline map used to
        // panic inside DeadlineMap::deadline; now it is a clean error.
        let qs = profile.qualities().clone();
        let mut pb = QualityProfile::builder(qs.clone(), 1);
        pb.set_levels(0, &[(10, 20), (40, 80)]).unwrap();
        let small = pb.build().unwrap();
        let small_dm = DeadlineMap::uniform(qs, vec![c(100)]);
        assert!(matches!(
            t.rebuild_av(&small, &small_dm),
            Err(SchedError::DimensionMismatch { .. })
        ));
        // Quality-set identity (not just cardinality) is validated too.
        let other_qs = QualitySet::new(vec![3, 9]).unwrap();
        let mut pb = QualityProfile::builder(other_qs.clone(), 2);
        pb.set_levels(0, &[(10, 20), (40, 80)]).unwrap();
        pb.set_levels(1, &[(10, 20), (40, 80)]).unwrap();
        let shifted = pb.build().unwrap();
        assert!(matches!(
            t.rebuild_av(&shifted, &deadlines),
            Err(SchedError::QualitySetMismatch)
        ));
        // The tables are untouched by rejected rebuilds.
        assert!(t.av_admits(0, 0, c(90)));
        assert!(!t.av_admits(0, 0, c(91)));
    }

    /// Implements only the six primitive accessors, so every derived
    /// predicate (`av_admits`, `wc_admits`, `qual_const`, the `q_M`
    /// searches) runs the trait's *default* bodies — the code path a
    /// future implementor inherits. `ConstraintTables` itself overrides
    /// the admit predicates, so without this shim the defaults would be
    /// dead code in tests.
    #[derive(Debug)]
    struct PrimitivesOnly(ConstraintTables);

    impl super::TableQuery for PrimitivesOnly {
        fn order(&self) -> &[ActionId] {
            self.0.order()
        }
        fn quality_count(&self) -> usize {
            self.0.quality_count()
        }
        fn av_budget_at(&self, qi: usize, i: usize) -> Slack {
            self.0.av_budget_at(qi, i)
        }
        fn wcmin_budget_at(&self, i: usize) -> Slack {
            self.0.wcmin_budget_at(i)
        }
        fn deadline_at(&self, qi: usize, i: usize) -> Cycles {
            self.0.deadline_at(qi, i)
        }
        fn worst_at(&self, qi: usize, i: usize) -> Cycles {
            self.0.worst_at(qi, i)
        }
    }

    #[test]
    fn trait_defaults_agree_with_inherent_queries() {
        use super::TableQuery;
        let (order, profile, deadlines) = setup();
        let t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        let shim = PrimitivesOnly(t.clone());
        let q: &dyn TableQuery = &shim;
        for i in 0..=t.len() {
            for qi in 0..t.quality_count() {
                for tt in [0u64, 20, 60, 80, 90, 190, 500] {
                    let tt = c(tt);
                    assert_eq!(q.av_admits(qi, i, tt), t.av_admits(qi, i, tt));
                    assert_eq!(q.wc_admits(qi, i, tt), t.wc_admits(qi, i, tt));
                    assert_eq!(q.qual_const(qi, i, tt), t.qual_const(qi, i, tt));
                }
            }
            for tt in [0u64, 30, 95] {
                assert_eq!(q.max_feasible(i, c(tt)), t.max_feasible(i, c(tt)));
                assert_eq!(q.max_feasible_soft(i, c(tt)), t.max_feasible_soft(i, c(tt)));
            }
        }
        assert_eq!(q.len(), t.len());
        assert_eq!(q.order(), t.order());
        assert!(!q.is_empty());
        // Infinite deadlines and an infinite elapsed time exercise the
        // defaults' ±∞ branches (own deadline +∞, t = +∞ admissibility).
        let (order, profile, _) = setup();
        let qs = profile.qualities().clone();
        let inf = DeadlineMap::uniform(qs, vec![Cycles::INFINITY, Cycles::INFINITY]);
        let t_inf = ConstraintTables::new(order, &profile, &inf).unwrap();
        let shim_inf = PrimitivesOnly(t_inf.clone());
        for i in 0..=t_inf.len() {
            for qi in 0..t_inf.quality_count() {
                for tt in [c(0), Cycles::mega(10_000), Cycles::INFINITY] {
                    assert_eq!(
                        super::TableQuery::qual_const(&shim_inf, qi, i, tt),
                        t_inf.qual_const(qi, i, tt)
                    );
                }
            }
        }
    }

    #[test]
    fn constructor_validates_dimensions() {
        let (order, profile, _) = setup();
        let other_qs = QualitySet::contiguous(0, 2).unwrap();
        let bad_deadlines = DeadlineMap::uniform(other_qs, vec![c(1), c(2)]);
        assert!(matches!(
            ConstraintTables::new(order.clone(), &profile, &bad_deadlines),
            Err(SchedError::QualitySetMismatch)
        ));
        let qs = profile.qualities().clone();
        let short = DeadlineMap::uniform(qs, vec![c(1)]);
        assert!(matches!(
            ConstraintTables::new(order, &profile, &short),
            Err(SchedError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn memory_footprint_is_reported() {
        let (order, profile, deadlines) = setup();
        let t = ConstraintTables::new(order, &profile, &deadlines).unwrap();
        assert!(t.memory_bytes() > 0);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
        assert_eq!(t.quality_count(), 2);
        assert_eq!(t.order().len(), 2);
    }
}
