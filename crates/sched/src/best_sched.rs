//! The paper's `Best_Sched` abstraction: optimal rescheduling with a fixed
//! executed prefix.

use fgqos_graph::{ActionId, PrecedenceGraph};
use fgqos_time::Cycles;

use crate::{edf, SchedError};

/// A scheduling algorithm usable as the paper's `Best_Sched(α, θ, i)`.
///
/// Given the precedence graph, per-action deadlines (already resolved for
/// the quality assignment under consideration) and the prefix of actions
/// that have already executed, produce a complete schedule extending that
/// prefix. The paper instantiates this with EDF; a FIFO baseline is
/// provided for comparison benches.
pub trait BestSched {
    /// Computes a complete schedule of `graph` whose first `prefix.len()`
    /// elements are exactly `prefix`.
    ///
    /// `deadlines` is indexed by dense action id.
    ///
    /// # Errors
    ///
    /// [`SchedError::DimensionMismatch`] if `deadlines.len() !=
    /// graph.len()`; [`SchedError::Graph`] if `prefix` is not a valid
    /// execution sequence.
    fn best_schedule(
        &self,
        graph: &PrecedenceGraph,
        deadlines: &[Cycles],
        prefix: &[ActionId],
    ) -> Result<Vec<ActionId>, SchedError>;

    /// Human-readable name for reports and benches.
    fn name(&self) -> &'static str;
}

/// Plain EDF list scheduling (the paper's instantiation).
///
/// Assumes deadlines are monotone along precedence edges, which holds for
/// the per-iteration deadline assignments used by the experiments; apply
/// [`edf::chetto_deadlines`] first when it does not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdfScheduler;

impl BestSched for EdfScheduler {
    fn best_schedule(
        &self,
        graph: &PrecedenceGraph,
        deadlines: &[Cycles],
        prefix: &[ActionId],
    ) -> Result<Vec<ActionId>, SchedError> {
        edf::edf_order_with_prefix(graph, deadlines, prefix)
    }

    fn name(&self) -> &'static str {
        "edf"
    }
}

/// Deadline-blind baseline: canonical topological (program) order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FifoScheduler;

impl BestSched for FifoScheduler {
    fn best_schedule(
        &self,
        graph: &PrecedenceGraph,
        deadlines: &[Cycles],
        prefix: &[ActionId],
    ) -> Result<Vec<ActionId>, SchedError> {
        if deadlines.len() != graph.len() {
            return Err(SchedError::DimensionMismatch {
                expected: graph.len(),
                actual: deadlines.len(),
            });
        }
        graph.validate_sequence(prefix)?;
        Ok(fgqos_graph::topo::list_order_by_key_with_prefix(
            graph,
            prefix,
            &mut |a| graph.topological_position(a),
        ))
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_graph::GraphBuilder;

    fn two_independent() -> (PrecedenceGraph, ActionId, ActionId) {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        (b.build().unwrap(), x, y)
    }

    #[test]
    fn edf_scheduler_orders_by_deadline() {
        let (g, x, y) = two_independent();
        let s = EdfScheduler
            .best_schedule(&g, &[Cycles::new(9), Cycles::new(3)], &[])
            .unwrap();
        assert_eq!(s, vec![y, x]);
        assert_eq!(EdfScheduler.name(), "edf");
    }

    #[test]
    fn fifo_scheduler_ignores_deadlines() {
        let (g, x, y) = two_independent();
        let s = FifoScheduler
            .best_schedule(&g, &[Cycles::new(9), Cycles::new(3)], &[])
            .unwrap();
        assert_eq!(s, vec![x, y]);
        assert_eq!(FifoScheduler.name(), "fifo");
    }

    #[test]
    fn both_respect_prefix_and_validate() {
        let (g, x, y) = two_independent();
        for sched in [&EdfScheduler as &dyn BestSched, &FifoScheduler] {
            let s = sched
                .best_schedule(&g, &[Cycles::new(1), Cycles::new(2)], &[y])
                .unwrap();
            assert_eq!(s[0], y);
            assert_eq!(s.len(), 2);
            let _ = x;
            assert!(sched.best_schedule(&g, &[Cycles::new(1)], &[]).is_err());
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let schedulers: Vec<Box<dyn BestSched>> =
            vec![Box::new(EdfScheduler), Box::new(FifoScheduler)];
        let (g, _, _) = two_independent();
        for s in &schedulers {
            let out = s
                .best_schedule(&g, &[Cycles::new(5), Cycles::new(6)], &[])
                .unwrap();
            g.validate_schedule(&out).unwrap();
        }
    }
}
