//! Feasibility of schedules (Definition 2.2) and the control problem's
//! schedulability precondition.

use fgqos_graph::{ActionId, PrecedenceGraph};
use fgqos_time::series;
use fgqos_time::{Cycles, DeadlineMap, QualityProfile, Slack};

use crate::{edf, SchedError};

/// `min(D(α) − Ĉ(α))` of a schedule given dense per-action deadline and
/// duration tables.
///
/// # Panics
///
/// Panics if `order` references actions outside the tables.
#[must_use]
pub fn schedule_min_slack(order: &[ActionId], deadlines: &[Cycles], durations: &[Cycles]) -> Slack {
    let d: Vec<Cycles> = order.iter().map(|a| deadlines[a.index()]).collect();
    let c: Vec<Cycles> = order.iter().map(|a| durations[a.index()]).collect();
    series::min_slack(&d, &c)
}

/// Definition 2.2 feasibility of `order` for the given tables.
///
/// # Panics
///
/// Panics if `order` references actions outside the tables.
#[must_use]
pub fn is_schedule_feasible(
    order: &[ActionId],
    deadlines: &[Cycles],
    durations: &[Cycles],
) -> bool {
    schedule_min_slack(order, deadlines, durations).is_nonnegative()
}

/// Dense per-action tables for one constant quality level: `(Cwc_q,
/// D_q)`.
fn tables_at_min_quality(
    profile: &QualityProfile,
    deadlines: &DeadlineMap,
) -> (Vec<Cycles>, Vec<Cycles>) {
    let qmin = profile.qualities().min();
    let n = profile.n_actions();
    let wc: Vec<Cycles> = (0..n).map(|a| profile.worst_idx(a, qmin)).collect();
    let d: Vec<Cycles> = (0..n).map(|a| deadlines.deadline_idx(a, qmin)).collect();
    (wc, d)
}

/// Checks the precondition of the control problem (Section 2.1): the set
/// of feasible schedules with respect to `Cwc_qmin` and `D_qmin` must be
/// non-empty. On success returns a witness schedule (EDF on
/// Chetto-modified deadlines, which is optimal, so if it fails every order
/// fails).
///
/// # Errors
///
/// [`SchedError::InfeasibleAtMinQuality`] when no schedule can meet the
/// deadlines even at minimal quality and worst-case times;
/// [`SchedError::DimensionMismatch`] if the tables do not match the graph.
pub fn check_precondition(
    graph: &PrecedenceGraph,
    profile: &QualityProfile,
    deadlines: &DeadlineMap,
) -> Result<Vec<ActionId>, SchedError> {
    if profile.n_actions() != graph.len() {
        return Err(SchedError::DimensionMismatch {
            expected: graph.len(),
            actual: profile.n_actions(),
        });
    }
    if deadlines.n_actions() != graph.len() {
        return Err(SchedError::DimensionMismatch {
            expected: graph.len(),
            actual: deadlines.n_actions(),
        });
    }
    let (wc, d) = tables_at_min_quality(profile, deadlines);
    let order = edf::edf_order_chetto(graph, &d, &wc, &[])?;
    let slack = schedule_min_slack(&order, &d, &wc);
    if slack.is_nonnegative() {
        Ok(order)
    } else {
        Err(SchedError::InfeasibleAtMinQuality { slack })
    }
}

/// Exhaustively verifies EDF optimality on small instances: EDF (with
/// Chetto modification) finds a feasible schedule iff one of the at most
/// `cap` enumerated linear extensions is feasible. Intended for tests and
/// validation tooling, not production paths.
///
/// Returns `(edf_feasible, any_extension_feasible)`.
///
/// # Errors
///
/// [`SchedError::DimensionMismatch`] on table size mismatch.
pub fn edf_vs_exhaustive(
    graph: &PrecedenceGraph,
    deadlines: &[Cycles],
    durations: &[Cycles],
    cap: usize,
) -> Result<(bool, bool), SchedError> {
    let order = edf::edf_order_chetto(graph, deadlines, durations, &[])?;
    let edf_ok = is_schedule_feasible(&order, deadlines, durations);
    let any_ok = fgqos_graph::topo::linear_extensions(graph, cap)
        .iter()
        .any(|ext| is_schedule_feasible(ext, deadlines, durations));
    Ok((edf_ok, any_ok))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_graph::GraphBuilder;
    use fgqos_time::QualitySet;

    fn c(v: u64) -> Cycles {
        Cycles::new(v)
    }

    #[test]
    fn min_slack_follows_order() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        let g = b.build().unwrap();
        let deadlines = [c(10), c(5)];
        let durations = [c(4), c(4)];
        // x first: y completes at 8 > 5 -> infeasible.
        assert!(!is_schedule_feasible(&[x, y], &deadlines, &durations));
        // y first: y at 4 <= 5, x at 8 <= 10 -> feasible.
        assert!(is_schedule_feasible(&[y, x], &deadlines, &durations));
        let _ = g;
    }

    #[test]
    fn precondition_accepts_feasible_system() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        b.edge(x, y).unwrap();
        let g = b.build().unwrap();
        let qs = QualitySet::contiguous(0, 1).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), 2);
        pb.set_levels(0, &[(5, 10), (20, 40)]).unwrap();
        pb.set_levels(1, &[(5, 10), (20, 40)]).unwrap();
        let profile = pb.build().unwrap();
        let deadlines = DeadlineMap::uniform(qs, vec![c(15), c(25)]);
        let witness = check_precondition(&g, &profile, &deadlines).unwrap();
        assert_eq!(witness, vec![x, y]);
    }

    #[test]
    fn precondition_rejects_overloaded_system() {
        let mut b = GraphBuilder::new();
        b.action("x");
        let g = b.build().unwrap();
        let qs = QualitySet::contiguous(0, 0).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), 1);
        pb.set_levels(0, &[(50, 100)]).unwrap();
        let profile = pb.build().unwrap();
        let deadlines = DeadlineMap::uniform(qs, vec![c(60)]);
        match check_precondition(&g, &profile, &deadlines).unwrap_err() {
            SchedError::InfeasibleAtMinQuality { slack } => {
                assert_eq!(slack, Slack::new(-40));
            }
            other => panic!("expected infeasibility, got {other:?}"),
        }
    }

    #[test]
    fn precondition_checks_dimensions() {
        let mut b = GraphBuilder::new();
        b.action("x");
        b.action("y");
        let g = b.build().unwrap();
        let qs = QualitySet::contiguous(0, 0).unwrap();
        let mut pb = QualityProfile::builder(qs.clone(), 1);
        pb.set_levels(0, &[(1, 1)]).unwrap();
        let profile = pb.build().unwrap();
        let deadlines = DeadlineMap::uniform(qs, vec![c(10)]);
        assert!(matches!(
            check_precondition(&g, &profile, &deadlines),
            Err(SchedError::DimensionMismatch { expected: 2, .. })
        ));
    }

    #[test]
    fn edf_matches_exhaustive_on_diamond() {
        let mut b = GraphBuilder::new();
        let s = b.action("s");
        let l = b.action("l");
        let r = b.action("r");
        let t = b.action("t");
        b.edge(s, l).unwrap();
        b.edge(s, r).unwrap();
        b.edge(l, t).unwrap();
        b.edge(r, t).unwrap();
        let g = b.build().unwrap();
        let deadlines = [c(2), c(10), c(4), c(20)];
        let durations = [c(2), c(3), c(2), c(4)];
        let (edf_ok, any_ok) = edf_vs_exhaustive(&g, &deadlines, &durations, 100).unwrap();
        assert_eq!(edf_ok, any_ok);
        assert!(edf_ok); // s(2) r(4) l(7<=10) t(11<=20)
    }
}
