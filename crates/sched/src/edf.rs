//! Earliest-deadline-first ordering over precedence graphs.
//!
//! On a uniprocessor with all actions released together, EDF is optimal for
//! independent actions; with precedence constraints, optimality is
//! recovered by first *modifying* deadlines so that every action's deadline
//! accounts for the work its successors still need
//! (`D*(a) = min(D(a), min_{a→b} (D*(b) − C(b)))`, Chetto/Blazewicz), then
//! list-scheduling by modified deadline among ready actions.

use fgqos_graph::{ActionId, PrecedenceGraph};
use fgqos_time::Cycles;

use crate::SchedError;

fn check_len(graph: &PrecedenceGraph, table: &[Cycles]) -> Result<(), SchedError> {
    if table.len() != graph.len() {
        return Err(SchedError::DimensionMismatch {
            expected: graph.len(),
            actual: table.len(),
        });
    }
    Ok(())
}

/// EDF list order: repeatedly run the *ready* action with the earliest
/// deadline (ties by action id). `deadlines` is indexed by dense action id.
///
/// The returned order is always a valid schedule of `graph`; feasibility
/// must be checked separately ([`crate::feasible`]).
///
/// # Errors
///
/// [`SchedError::DimensionMismatch`] if `deadlines.len() != graph.len()`.
pub fn edf_order(
    graph: &PrecedenceGraph,
    deadlines: &[Cycles],
) -> Result<Vec<ActionId>, SchedError> {
    edf_order_with_prefix(graph, deadlines, &[])
}

/// EDF list order with a fixed already-executed prefix (the shape of
/// `Best_Sched(α, θ, i)`).
///
/// # Errors
///
/// [`SchedError::DimensionMismatch`] on table size mismatch, or a
/// [`SchedError::Graph`] error if `prefix` is not a valid execution
/// sequence of `graph`.
pub fn edf_order_with_prefix(
    graph: &PrecedenceGraph,
    deadlines: &[Cycles],
    prefix: &[ActionId],
) -> Result<Vec<ActionId>, SchedError> {
    check_len(graph, deadlines)?;
    graph.validate_sequence(prefix)?;
    Ok(fgqos_graph::topo::list_order_by_key_with_prefix(
        graph,
        prefix,
        &mut |a| deadlines[a.index()],
    ))
}

/// The Chetto/Blazewicz deadline-modification transform:
/// `D*(a) = min(D(a), min over successors b of (D*(b) − C(b)))`.
///
/// After the transform, deadlines are monotone along precedence edges
/// given the execution times `times`, and plain EDF list scheduling on
/// `D*` is optimal: if any schedule of `graph` is feasible for `(times,
/// deadlines)`, the EDF order on `D*` is feasible too.
///
/// # Errors
///
/// [`SchedError::DimensionMismatch`] if either table size differs from the
/// graph.
pub fn chetto_deadlines(
    graph: &PrecedenceGraph,
    deadlines: &[Cycles],
    times: &[Cycles],
) -> Result<Vec<Cycles>, SchedError> {
    check_len(graph, deadlines)?;
    check_len(graph, times)?;
    let mut out = deadlines.to_vec();
    // Reverse topological sweep: successors are final when visited.
    for &a in graph.topological_order().iter().rev() {
        let ai = a.index();
        for &b in graph.successors(a) {
            let candidate = out[b.index()] - times[b.index()];
            if candidate < out[ai] {
                out[ai] = candidate;
            }
        }
    }
    Ok(out)
}

/// EDF on Chetto-modified deadlines, the optimal uniprocessor scheduler
/// for precedence-constrained actions released together.
///
/// # Errors
///
/// Same conditions as [`chetto_deadlines`] and [`edf_order_with_prefix`].
pub fn edf_order_chetto(
    graph: &PrecedenceGraph,
    deadlines: &[Cycles],
    times: &[Cycles],
    prefix: &[ActionId],
) -> Result<Vec<ActionId>, SchedError> {
    let modified = chetto_deadlines(graph, deadlines, times)?;
    edf_order_with_prefix(graph, &modified, prefix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgqos_graph::GraphBuilder;

    fn c(v: u64) -> Cycles {
        Cycles::new(v)
    }

    #[test]
    fn edf_orders_independent_actions_by_deadline() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        let z = b.action("z");
        let g = b.build().unwrap();
        let order = edf_order(&g, &[c(30), c(10), c(20)]).unwrap();
        assert_eq!(order, vec![y, z, x]);
    }

    #[test]
    fn edf_respects_precedence_over_deadline() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        b.edge(x, y).unwrap();
        let g = b.build().unwrap();
        // y has earlier deadline but depends on x.
        let order = edf_order(&g, &[c(100), c(10)]).unwrap();
        assert_eq!(order, vec![x, y]);
    }

    #[test]
    fn edf_breaks_ties_by_id() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        let g = b.build().unwrap();
        let order = edf_order(&g, &[c(10), c(10)]).unwrap();
        assert_eq!(order, vec![x, y]);
    }

    #[test]
    fn prefix_is_preserved() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        let z = b.action("z");
        let g = b.build().unwrap();
        let order = edf_order_with_prefix(&g, &[c(1), c(2), c(3)], &[z]).unwrap();
        assert_eq!(order, vec![z, x, y]);
    }

    #[test]
    fn invalid_prefix_is_reported() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        b.edge(x, y).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            edf_order_with_prefix(&g, &[c(1), c(2)], &[y]),
            Err(SchedError::Graph(_))
        ));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let mut b = GraphBuilder::new();
        b.action("x");
        let g = b.build().unwrap();
        assert_eq!(
            edf_order(&g, &[]).unwrap_err(),
            SchedError::DimensionMismatch {
                expected: 1,
                actual: 0
            }
        );
    }

    #[test]
    fn chetto_tightens_predecessor_deadlines() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        b.edge(x, y).unwrap();
        let g = b.build().unwrap();
        // y: deadline 50, cost 20 -> x must effectively finish by 30.
        let d = chetto_deadlines(&g, &[c(100), c(50)], &[c(5), c(20)]).unwrap();
        assert_eq!(d[x.index()], c(30));
        assert_eq!(d[y.index()], c(50));
    }

    #[test]
    fn chetto_propagates_through_chains() {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..3).map(|i| b.action(format!("n{i}"))).collect();
        b.chain(&ids).unwrap();
        let g = b.build().unwrap();
        let d = chetto_deadlines(
            &g,
            &[Cycles::INFINITY, Cycles::INFINITY, c(100)],
            &[c(10), c(20), c(30)],
        )
        .unwrap();
        assert_eq!(d[2], c(100));
        assert_eq!(d[1], c(70));
        assert_eq!(d[0], c(50));
    }

    #[test]
    fn chetto_keeps_already_monotone_deadlines() {
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        b.edge(x, y).unwrap();
        let g = b.build().unwrap();
        let d = chetto_deadlines(&g, &[c(10), c(100)], &[c(1), c(1)]).unwrap();
        assert_eq!(d, vec![c(10), c(100)]);
    }

    #[test]
    fn edf_chetto_recovers_feasibility_missed_by_plain_edf() {
        // x (deadline inf) and u (deadline 15) independent; x -> y with
        // y's deadline 12 and cost 10. Plain EDF runs u first (15 < inf)
        // and misses y; Chetto gives x an effective deadline of 2.
        let mut b = GraphBuilder::new();
        let x = b.action("x");
        let y = b.action("y");
        let u = b.action("u");
        b.edge(x, y).unwrap();
        let g = b.build().unwrap();
        let deadlines = [Cycles::INFINITY, c(12), c(15)];
        let times = [c(2), c(10), c(3)];

        let plain = edf_order(&g, &deadlines).unwrap();
        assert_eq!(plain, vec![u, x, y]); // u first -> y completes at 15 > 12

        let smart = edf_order_chetto(&g, &deadlines, &times, &[]).unwrap();
        // Modified deadlines: x -> 2, y -> 12, u -> 15, so x, y, u.
        assert_eq!(smart, vec![x, y, u]);
        let mut t = Cycles::ZERO;
        for &a in &smart {
            t += times[a.index()];
            assert!(t <= deadlines[a.index()], "{a} misses its deadline");
        }
    }
}
