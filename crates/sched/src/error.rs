//! Error type of the scheduling crate.

use std::error::Error;
use std::fmt;

use fgqos_graph::GraphError;
use fgqos_time::Slack;

/// Errors produced by schedulers and feasibility analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchedError {
    /// Underlying precedence-graph error (invalid prefix, unknown action,
    /// ...).
    Graph(GraphError),
    /// A per-action table does not match the graph size.
    DimensionMismatch {
        /// Actions in the graph.
        expected: usize,
        /// Entries provided.
        actual: usize,
    },
    /// Profile and deadline map are indexed by different quality sets
    /// (possibly of the same cardinality — the *levels* disagree).
    QualitySetMismatch,
    /// The schedulability precondition fails: even at minimal quality with
    /// worst-case times, no feasible schedule exists. Payload is the ((
    /// negative) margin of the EDF schedule, which is optimal, so no other
    /// order can do better.
    InfeasibleAtMinQuality {
        /// The (negative) minimal slack of the EDF schedule.
        slack: Slack,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Graph(e) => write!(f, "graph error: {e}"),
            SchedError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "per-action table has {actual} entries, graph has {expected}"
                )
            }
            SchedError::QualitySetMismatch => {
                write!(f, "profile and deadline map use different quality sets")
            }
            SchedError::InfeasibleAtMinQuality { slack } => write!(
                f,
                "no feasible schedule at minimal quality and worst-case times (margin {slack})"
            ),
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SchedError {
    fn from(e: GraphError) -> Self {
        SchedError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = SchedError::from(GraphError::ZeroIterations);
        assert!(e.to_string().contains("graph error"));
        assert!(e.source().is_some());
        let e = SchedError::DimensionMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("1 entries"));
        assert!(e.source().is_none());
        let e = SchedError::QualitySetMismatch;
        assert!(e.to_string().contains("quality sets"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SchedError>();
    }
}
