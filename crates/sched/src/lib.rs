//! EDF scheduling, `Best_Sched` and precomputed constraint tables.
//!
//! This crate is the scheduling substrate of the fine-grain QoS controller
//! of Combaz et al. (DATE 2005, Section 2.2):
//!
//! * [`edf`] — earliest-deadline-first list scheduling over a precedence
//!   graph, with the Chetto/Blazewicz deadline-modification transform for
//!   deadline assignments that are not monotone along precedence edges;
//! * [`BestSched`] — the paper's `Best_Sched(α, θ, i)` abstraction: compute
//!   an optimal schedule that keeps an already-executed prefix fixed
//!   ([`EdfScheduler`] is the paper's choice, [`FifoScheduler`] is the
//!   naive baseline);
//! * [`feasible`] — Definition 2.2 feasibility of schedules and the
//!   schedulability precondition of the control problem (a feasible
//!   schedule must exist for `Cwc_qmin` and `D_qmin`);
//! * [`ConstraintTables`] — the "tables containing pre-computed values used
//!   by the controller for the computation of `Qual_Constav` and
//!   `Qual_Constwc`" produced by the prototype tool of Fig. 4, giving O(1)
//!   per-decision constraint evaluation;
//! * [`BudgetTables`] — the budget-parametric variant: for deadlines that
//!   are affine in a per-frame time budget (the [`DeadlineShape`] family),
//!   the suffix budgets are lower envelopes of integer lines over the
//!   budget, precomputed once per stream and evaluated at any budget in
//!   O(log segments) per cell with zero per-frame allocation
//!   ([`BudgetTables::at_budget`]);
//! * [`TableQuery`] — the common query surface of both table flavors
//!   (what the controller and the quality policies consume), with
//!   [`SharedTables`] as the cheap clonable handle over either.
//!
//! # Example
//!
//! ```
//! use fgqos_graph::GraphBuilder;
//! use fgqos_time::Cycles;
//! use fgqos_sched::{BestSched, EdfScheduler};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = GraphBuilder::new();
//! let x = b.action("x");
//! let y = b.action("y");
//! let g = b.build()?; // independent actions
//! // y has the earlier deadline: EDF runs it first.
//! let order = EdfScheduler.best_schedule(&g, &[Cycles::new(90), Cycles::new(50)], &[])?;
//! assert_eq!(order, vec![y, x]);
//! # let _ = x;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod best_sched;
mod budget;
mod error;
mod tables;

pub mod edf;
pub mod feasible;

pub use best_sched::{BestSched, EdfScheduler, FifoScheduler};
pub use budget::{budget_deadlines, BudgetTables, BudgetView, DeadlineShape, SharedTables};
pub use error::SchedError;
pub use tables::{ConstraintTables, TableQuery};
