//! # fine-grain-qos
//!
//! A Rust reproduction of Combaz, Fernandez, Lepley and Sifakis,
//! *"Fine Grain QoS Control for Multimedia Application Software"*
//! (DATE 2005) — a controller that runs *between* the actions of a cyclic
//! data-flow application and, at every step, picks the maximal quality
//! level that (a) can never cause a deadline miss even under worst-case
//! execution times with a fall-back to minimal quality (safety), and
//! (b) still fits the remaining schedule on average-time projections
//! (optimal time-budget utilization).
//!
//! This crate is an umbrella over the workspace:
//!
//! * [`graph`] (`fgqos-graph`) — precedence graphs, execution sequences,
//!   iterated bodies;
//! * [`time`] (`fgqos-time`) — cycles, quality levels, execution-time
//!   profiles, deadlines, the Fig. 5 tables;
//! * [`sched`] (`fgqos-sched`) — EDF / `Best_Sched`, feasibility,
//!   precomputed `Qual_Const` tables;
//! * [`core`] (`fgqos-core`) — the controller, quality policies, online
//!   average estimation, safety monitoring;
//! * [`sim`] (`fgqos-sim`) — the virtual platform: execution-time models,
//!   the camera/buffer pipeline of Fig. 3, the stream runner;
//! * [`encoder`] (`fgqos-encoder`) — a from-scratch macroblock video
//!   encoder with the Fig. 2 pipeline and a synthetic camera;
//! * [`serve`] (`fgqos-serve`) — the multi-stream serving layer: a
//!   shared-pool stream server with priority admission control,
//!   pluggable frame sources (paced, trace replay, channel-fed), and the
//!   zero-copy output plane (GOP-trimmed encoded-frame rings with
//!   M-independent broadcast fan-out);
//! * [`tool`] (`fgqos-tool`) — the Fig. 4 prototype tool: specs →
//!   controlled application (+ Rust codegen and overhead reports);
//! * [`telemetry`] (`fgqos-telemetry`) — the unified telemetry plane:
//!   an allocation-free-on-the-hot-path metrics registry (counters,
//!   gauges, log-bucketed histograms), per-worker span capture with
//!   Chrome-trace export, and versioned JSON snapshots — observe-only
//!   by contract, so enabling it never changes a result.
//!
//! # Quickstart
//!
//! ```
//! use fine_grain_qos::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Describe a 2-action pipeline with 2 quality levels.
//! let mut b = GraphBuilder::new();
//! let decode = b.action("decode");
//! let enhance = b.action("enhance");
//! b.edge(decode, enhance)?;
//! let graph = b.build()?;
//!
//! let qs = QualitySet::contiguous(0, 1)?;
//! let mut pb = QualityProfile::builder(qs.clone(), 2);
//! pb.set_levels(0, &[(10, 20), (30, 80)])?;   // decode
//! pb.set_levels(1, &[(15, 25), (40, 90)])?;   // enhance
//! let profile = pb.build()?;
//! let deadlines = DeadlineMap::uniform(qs, vec![Cycles::new(150), Cycles::new(300)]);
//!
//! let system = ParamSystem::new(graph, profile, deadlines)?;
//! let mut controller = CycleController::new(&system, &EdfScheduler)?;
//! let mut policy = MaxQuality::new();
//!
//! let mut t = Cycles::ZERO;
//! while let Some(d) = controller.decide(t, &mut policy)? {
//!     // "run" the action: here it consumes its average time.
//!     t = t + system.profile().avg(d.action, d.quality);
//!     controller.complete(t)?;
//! }
//! let report = controller.finish();
//! assert_eq!(report.misses, 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fgqos_core as core;
pub use fgqos_encoder as encoder;
pub use fgqos_graph as graph;
pub use fgqos_sched as sched;
pub use fgqos_serve as serve;
pub use fgqos_sim as sim;
pub use fgqos_telemetry as telemetry;
pub use fgqos_time as time;
pub use fgqos_tool as tool;

/// The most common imports for building and controlling an application.
pub mod prelude {
    pub use fgqos_core::estimator::{AvgEstimator, EwmaEstimator, WindowEstimator};
    pub use fgqos_core::policy::{
        ConstantQuality, Hysteresis, MaxQuality, QualityPolicy, Smooth, SoftDeadline,
    };
    pub use fgqos_core::{CycleController, CycleReport, Decision, ParamSystem};
    pub use fgqos_graph::iterate::IterationMode;
    pub use fgqos_graph::{ActionId, ExecutionSequence, GraphBuilder, PrecedenceGraph};
    pub use fgqos_sched::{
        BestSched, BudgetTables, ConstraintTables, EdfScheduler, FifoScheduler, SharedTables,
        TableQuery,
    };
    pub use fgqos_serve::{
        stochastic_backends, table_apps, AdmissionController, AdmissionDecision, Broadcast,
        CeilingPolicy, ChannelSource, ChurnAction, ChurnEvent, ChurnStorm, Delivery, EncodedFrame,
        FeedbackConfig, FrameProducer, FrameRing, FrameSource, LifecycleCounts, PacedSource,
        PoolMode, PublishStats, RingConfig, ServeReport, ServerConfig, StreamOutcome, StreamServer,
        StreamSession, StreamSpec, StreamSpecBuilder, Subscriber, TablesMode, TraceSource,
    };
    pub use fgqos_sim::app::{TableApp, VideoApp};
    pub use fgqos_sim::budget::{BudgetSpec, ChannelParams};
    pub use fgqos_sim::runner::{
        DeadlineShape, Mode, ParallelStream, RunConfig, Runner, StreamResult,
    };
    pub use fgqos_sim::runtime::{
        Clock, ExecBackend, MeasuredBackend, ModelBackend, ParallelApp, VirtualClock, WallClock,
        WorkStealingPool,
    };
    pub use fgqos_sim::scenario::LoadScenario;
    pub use fgqos_telemetry::{
        HistogramData, SpanRecorder, Stability, Telemetry, TelemetrySnapshot,
    };
    pub use fgqos_time::{Cycles, DeadlineMap, Quality, QualityProfile, QualitySet, Slack};
}
