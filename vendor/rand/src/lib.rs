//! Vendored minimal stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, written for this workspace's offline build environment.
//!
//! Only the API surface the workspace actually uses is provided:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (NOT cryptographically secure, unlike the real `StdRng`);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of the primitive
//!   integer and float types, [`Rng::gen_bool`], [`Rng::gen`] for a few
//!   primitives, [`Rng::fill`] for byte slices.
//!
//! Everything is deterministic given the seed, which is exactly what the
//! simulator and test suites require.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit ranges get their own impls: the macro's widening arithmetic via
// i128 would overflow on them. Spans above 2^64 are not supported.
macro_rules! impl_128_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u128;
                assert!(span <= u64::MAX as u128, "gen_range: 128-bit span too wide");
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as u128 + 1;
                assert!(span <= u64::MAX as u128, "gen_range: 128-bit span too wide");
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_128_range!(u128, i128);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.unit_f64() < p
    }

    /// A uniform value of a supported primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Marker for types [`Rng::gen`] can produce (the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value from the whole domain of the type.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64()
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.unit_f64() as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut word = [0u8; 8];
                word.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(word);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias: the workspace only needs one small, fast generator.
    pub type SmallRng = StdRng;
}
