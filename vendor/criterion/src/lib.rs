//! Vendored minimal stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, written for this workspace's offline build environment.
//!
//! It measures wall-clock time with `std::time::Instant`: a short warm-up,
//! then `sample_size` samples of an auto-scaled iteration batch, reporting
//! min/mean/max per-iteration times to stdout. No statistics beyond that,
//! no HTML reports, no comparison with saved baselines.
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], [`black_box`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! `cargo bench -- <filter>` runs only benchmarks whose name contains one
//! of the given substrings; `--test` (passed by `cargo test --benches`)
//! runs each benchmark exactly once.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (kept small: this is a smoke
/// harness, not a statistics engine).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// How the batch size of [`Bencher::iter_batched`] is chosen. Only used as
/// a marker here; batches are always run one setup per routine call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch (marker only).
    SmallInput,
    /// Large inputs: few per batch (marker only).
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter (inside a named group).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters_hint: u64,
    samples: Vec<Duration>,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up + auto-scale: find an iteration count that fills the
        // target sample time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME / 4 || iters >= 1 << 24 {
                let per_iter = elapsed / iters as u32;
                self.samples.push(per_iter);
                self.iters_hint = iters;
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 1..DEFAULT_SAMPLE_SIZE.min(self.iters_hint as usize + 2) {
            let start = Instant::now();
            for _ in 0..self.iters_hint {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_hint as u32);
        }
    }

    /// Time `routine` on fresh inputs produced by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            black_box(routine(input));
            self.samples.push(Duration::ZERO);
            return;
        }
        let deadline = Instant::now() + TARGET_SAMPLE_TIME;
        let mut measured = 0usize;
        while measured < DEFAULT_SAMPLE_SIZE.max(3) && Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            measured += 1;
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(full_name: &str, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters_hint: 1,
        samples: Vec::new(),
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("{full_name}: ok (test mode)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{full_name}: no samples");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{full_name}: [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        bencher.samples.len(),
    );
}

/// The benchmark driver (the real crate's `Criterion<M>`).
#[derive(Default)]
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
}

impl Criterion {
    /// Apply command-line arguments (`--test`, name filters; everything
    /// else criterion-specific is accepted and ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" | "-v" | "--noplot" => {}
                "--sample-size" | "--warm-up-time" | "--measurement-time" | "--save-baseline"
                | "--baseline" | "--profile-time" => {
                    args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filters.push(s.to_string()),
            }
        }
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Benchmark a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        if self.matches(&id.name) {
            run_one(&id.name, self.test_mode, &mut f);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Print the final summary (no-op in this stand-in).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API compatibility; the stand-in
    /// keeps its own small fixed sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion.test_mode, &mut f);
        }
        self
    }

    /// Benchmark a function parameterized by an input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion.test_mode, &mut |b| f(b, input));
        }
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
