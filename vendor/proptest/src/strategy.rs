//! The [`Strategy`] trait and the built-in strategies the workspace uses.
//!
//! Unlike real proptest there is no `ValueTree` layer: a strategy is just a
//! deterministic function from an RNG state to a value, and filters reject
//! by returning `None` (the runner retries with fresh randomness).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

/// The RNG handed to strategies (deterministic per test case).
pub type TestRng = rand::rngs::StdRng;

/// How many times a filter retries locally before rejecting the whole case.
const LOCAL_FILTER_RETRIES: usize = 64;

/// A generator of random values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value, or `None` if a filter rejected the attempt.
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; `whence` labels the filter.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategies behind references generate like the strategy itself.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).try_gen(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn try_gen(&self, rng: &mut TestRng) -> Option<T> {
        self.0.try_gen(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn try_gen(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.try_gen(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn try_gen(&self, rng: &mut TestRng) -> Option<T::Value> {
        let seed_value = self.inner.try_gen(rng)?;
        (self.f)(seed_value).try_gen(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_gen(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_FILTER_RETRIES {
            let v = self.inner.try_gen(rng)?;
            if (self.pred)(&v) {
                return Some(v);
            }
        }
        None
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn try_gen(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Types with a canonical "whole domain" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn try_gen(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn try_gen(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn try_gen(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.try_gen(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
