//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// A length specification: a fixed size or a range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection::vec: empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "collection::vec: empty size range");
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_gen(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = if self.size.lo == self.size.hi_inclusive {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi_inclusive)
        };
        (0..len).map(|_| self.element.try_gen(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
