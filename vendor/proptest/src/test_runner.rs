//! The case runner behind the `proptest!` macro.

use rand::SeedableRng;

use crate::strategy::TestRng;

/// Per-test configuration (the real crate's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a test body stopped early.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case does not apply (`prop_assume!` failed); try another input.
    Reject(String),
    /// A property was violated (`prop_assert!` failed).
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (input discarded, not counted) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Outcome of running one generated case.
#[derive(Debug)]
pub enum CaseOutcome {
    /// The property held.
    Pass,
    /// The input was rejected (filter or assumption); does not count.
    Reject,
    /// The property was violated.
    Fail(String),
}

/// FNV-1a, used to derive a per-test seed from its name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Effective case count: the config value, capped by `PROPTEST_CASES` if set.
fn effective_cases(config: &Config) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(cap) => config.cases.min(cap.max(1)),
        None => config.cases,
    }
}

/// Run `case` until `config.cases` successful executions (deterministic).
///
/// Panics with a replayable description on the first failing case.
pub fn run_cases(
    config: &Config,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> CaseOutcome,
) {
    let cases = effective_cases(config);
    let base_seed = fnv1a(test_name.as_bytes());
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < cases {
        let seed = base_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::seed_from_u64(seed);
        match case(&mut rng) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{test_name}': too many rejected inputs \
                         ({rejected} rejects for {passed}/{cases} passes)"
                    );
                }
            }
            CaseOutcome::Fail(msg) => {
                panic!(
                    "proptest '{test_name}' failed at case {passed} \
                     (attempt {attempt}, seed {seed:#x}):\n{msg}"
                );
            }
        }
        attempt += 1;
    }
}
