//! Vendored minimal stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, written for this workspace's offline build environment.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports the seed and case index so it
//!   can be replayed, but is not minimized;
//! * **deterministic** — the RNG seed is derived from the test name and case
//!   index, so every run explores the same inputs (CI stability);
//! * the number of cases is capped by the `PROPTEST_CASES` environment
//!   variable when set, e.g. `PROPTEST_CASES=8 cargo test -q` for a quick
//!   smoke pass.
//!
//! Only the API surface the workspace uses is provided: [`Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_filter`, strategies for integer and
//! float ranges, tuples, [`Just`], [`any`], [`collection::vec`],
//! [`bool::weighted`], and the [`proptest!`], [`prop_assert!`],
//! [`prop_assert_eq!`], [`prop_assert_ne!`] and [`prop_assume!`] macros.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection;

/// Strategies over `bool` (the real crate's `proptest::bool` module).
pub mod bool {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// A `bool` strategy that is `true` with probability `p`.
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(pub f64);

    impl Strategy for Weighted {
        type Value = bool;
        fn try_gen(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.gen_bool(self.0))
        }
    }

    /// `true` with probability `p`, `false` otherwise.
    pub fn weighted(p: f64) -> Weighted {
        assert!(
            (0.0..=1.0).contains(&p),
            "bool::weighted: probability out of range"
        );
        Weighted(p)
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::Config as ProptestConfig;

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in my_strategy()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_cases(
                    &config,
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $arg = match $crate::strategy::Strategy::try_gen(
                                &($strat),
                                __proptest_rng,
                            ) {
                                Some(v) => v,
                                None => return $crate::test_runner::CaseOutcome::Reject,
                            };
                        )+
                        let __proptest_result: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                        match __proptest_result {
                            ::std::result::Result::Ok(()) =>
                                $crate::test_runner::CaseOutcome::Pass,
                            ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Reject(_),
                            ) => $crate::test_runner::CaseOutcome::Reject,
                            ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Fail(msg),
                            ) => $crate::test_runner::CaseOutcome::Fail(msg),
                        }
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds (does not count as a run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
